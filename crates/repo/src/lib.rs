//! # cupid-repo — the persistent schema repository (DESIGN.md §8)
//!
//! The paper frames matching as one step of a long-lived
//! data-integration workflow (§9), and PR 3's [`MatchSession`] made the
//! in-process half of that cheap: prepare every schema once, share one
//! token-similarity memo across all pairs. This crate is the half that
//! survives restarts:
//!
//! * **Snapshots** — a [`Repository`] persists the whole session
//!   (token table, similarity memo chunks, every prepared schema, the
//!   source schema graphs) in a versioned, hand-rolled binary format
//!   with a trailing checksum. Config and thesaurus fingerprints are
//!   stored alongside; opening with a different matcher configuration
//!   invalidates the snapshot instead of serving subtly wrong numbers.
//! * **Incremental re-matching** — per-pair [`MatchSummary`] results
//!   are cached keyed by the two schemas' *content hashes*. Editing
//!   one schema of an `N`-schema corpus re-executes only that schema's
//!   `N−1` pairs; everything else is served from the cache,
//!   bit-identical to a cold rebuild.
//! * **Top-k discovery** — an inverted index over interned leaf name
//!   tokens ([`DiscoveryIndex`]) retrieves match candidates by cheap
//!   token overlap, so corpus discovery can execute `N·k` pairs
//!   instead of `N·(N−1)/2`.
//! * **Single-writer locking** — opening a repository takes an
//!   advisory lock file next to the snapshot for the lifetime of the
//!   handle ([`RepoLock`]), so two processes can no longer clobber
//!   each other's saves last-rename-wins; the loser gets a loud
//!   [`RepoError::Locked`] naming the holder's pid.
//! * **Write-ahead journal** — every mutation appends one checksummed
//!   record to a sibling `<snapshot>.journal` file
//!   ([`journal::Journal`], DESIGN.md §10); an fsynced append
//!   ([`Repository::sync_journal`]) is a durability point orders of
//!   magnitude cheaper than a snapshot rewrite. Opening replays the
//!   journal tail on top of the snapshot, and saves (explicit or
//!   threshold-triggered compaction) fold it back into a fresh
//!   snapshot. A crash loses at most the un-synced suffix — never an
//!   fsync-acknowledged mutation — which the fault-injection suite in
//!   `tests/crash_recovery.rs` proves by killing live daemons.
//!
//! ```
//! use cupid_core::{Cupid, CupidConfig};
//! use cupid_lexical::Thesaurus;
//! use cupid_model::{DataType, ElementKind, SchemaBuilder};
//! use cupid_repo::Repository;
//!
//! let schema = |name: &str, field: &str| {
//!     let mut b = SchemaBuilder::new(name);
//!     let item = b.structured(b.root(), "Item", ElementKind::XmlElement);
//!     b.atomic(item, field, ElementKind::XmlElement, DataType::Int);
//!     b.build().unwrap()
//! };
//!
//! let dir = std::env::temp_dir().join(format!("cupid-repo-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let config = CupidConfig::default();
//! let thesaurus = Thesaurus::with_default_stopwords();
//!
//! // First run: build, match, save. The handle holds the snapshot's
//! // single-writer lock, so it must drop before the warm reopen.
//! let summaries = {
//!     let mut repo = Repository::open_or_create(&dir, &config, &thesaurus).unwrap();
//!     repo.add(&schema("A", "Quantity")).unwrap();
//!     repo.add(&schema("B", "Quantity")).unwrap();
//!     let summaries = repo.match_all_pairs();
//!     assert_eq!(repo.pairs_executed(), 1);
//!     repo.save().unwrap();
//!     summaries
//! };
//!
//! // Second run: everything — including the pair result — comes back
//! // from disk; nothing is re-executed.
//! let mut warm = Repository::open_or_create(&dir, &config, &thesaurus).unwrap();
//! assert_eq!(warm.match_all_pairs(), summaries);
//! assert_eq!(warm.pairs_executed(), 0);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

use cupid_core::{
    Cupid, CupidConfig, LsimTable, MatchSession, MatchSummary, PairExplanation, SchemaId,
    SessionStats,
};
use cupid_lexical::{SimStore, Thesaurus};
use cupid_model::{fnv1a, ModelError, Schema};

pub mod fault;
mod index;
pub mod journal;
mod lock;
mod snapshot;

pub use index::{Candidate, DiscoveryIndex};
pub use journal::{Journal, JournalHeader, JournalRecord, JOURNAL_VERSION};
pub use lock::RepoLock;

/// Default file name used when a repository path points at a directory.
pub const SNAPSHOT_FILE: &str = "cupid.repo";

/// Errors of the repository subsystem.
#[derive(Debug)]
pub enum RepoError {
    /// Reading or writing the snapshot file failed.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying I/O error.
        message: String,
    },
    /// The snapshot bytes are damaged (bad magic, checksum mismatch,
    /// malformed structure). The repository refuses to guess; delete
    /// the file to start over.
    Corrupt {
        /// What failed to decode.
        message: String,
    },
    /// The snapshot is well-formed but was produced by a different
    /// matcher configuration, thesaurus, or container version, so its
    /// persisted similarities are not valid here.
    /// [`Repository::open_or_create`] recovers by starting fresh.
    Stale {
        /// Which fingerprint differed.
        reason: String,
    },
    /// Another live repository handle holds the snapshot's
    /// single-writer lock. Two handles saving the same snapshot would
    /// clobber each other last-rename-wins, so opening is refused
    /// loudly instead (DESIGN.md §9.4).
    Locked {
        /// The lock file that is held.
        path: PathBuf,
        /// The holder's pid, as recorded in the lock file.
        pid: u32,
    },
    /// A schema with this name is already in the repository.
    DuplicateName(String),
    /// No schema with this name is in the repository.
    UnknownName(String),
    /// Preparing a schema failed (e.g. recursive type definitions).
    Model(ModelError),
    /// Exporting a schema to SDL failed (construct not representable).
    Export {
        /// The schema being exported.
        name: String,
        /// Why it is not representable.
        message: String,
    },
    /// Importing an SDL document failed.
    Import(cupid_io::ParseError),
}

impl fmt::Display for RepoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepoError::Io { path, message } => write!(f, "{}: {message}", path.display()),
            RepoError::Corrupt { message } => write!(f, "corrupt snapshot: {message}"),
            RepoError::Stale { reason } => write!(f, "stale snapshot: {reason}"),
            RepoError::Locked { path, pid } => write!(
                f,
                "repository is locked by pid {pid} ({}); a snapshot has exactly one \
                 writer at a time",
                path.display()
            ),
            RepoError::DuplicateName(n) => write!(f, "schema `{n}` already in repository"),
            RepoError::UnknownName(n) => write!(f, "no schema `{n}` in repository"),
            RepoError::Model(e) => write!(f, "schema preparation failed: {e}"),
            RepoError::Export { name, message } => {
                write!(f, "cannot export `{name}` as SDL: {message}")
            }
            RepoError::Import(e) => write!(f, "SDL import failed: {e}"),
        }
    }
}

impl std::error::Error for RepoError {}

impl From<ModelError> for RepoError {
    fn from(e: ModelError) -> Self {
        RepoError::Model(e)
    }
}

/// Aggregate repository counters, for reports and benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepositoryStats {
    /// Schemas in the repository.
    pub schemas: usize,
    /// Pair summaries currently cached (including stale-keyed entries
    /// not yet pruned by [`Repository::save`]).
    pub cached_pairs: usize,
    /// Full pair executions since this handle was opened — the number
    /// the incremental machinery exists to minimize.
    pub pairs_executed: usize,
    /// The underlying session's counters (vocabulary, memo, memory).
    pub session: SessionStats,
}

/// Counters of the durability layer (DESIGN.md §10.6): how much of the
/// repository's state currently rides on the write-ahead journal, what
/// recovery did at open, and whether persistence has degraded. Served
/// through the daemon's `Stats` frame and the eval `daemon` experiment.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DurabilityStats {
    /// Mutation records currently in the journal (folded to 0 by every
    /// save/compaction).
    pub journal_records: u64,
    /// Bytes in the journal file, header frame included.
    pub journal_bytes: u64,
    /// Records replayed on top of the snapshot when this handle opened.
    pub replayed_records: u64,
    /// Times this handle folded a non-empty journal into a snapshot
    /// (explicit saves and threshold-triggered compactions alike).
    pub compactions: u64,
    /// The most recent journal/snapshot persistence failure, if any —
    /// mutations keep succeeding in memory when the disk degrades, but
    /// the degradation is surfaced here instead of being swallowed.
    pub last_fsync_error: Option<String>,
    /// Why recovery discarded journal bytes at open (damaged tail past
    /// the last valid record, or a journal left behind by a crash
    /// between snapshot publish and journal reset). `None` for a clean
    /// open.
    pub replay_discarded: Option<String>,
}

/// The result of [`Repository::match_pair_shared`]: either served from
/// the persisted cache, or executed over a memo clone and awaiting
/// publication via [`Repository::absorb`].
#[derive(Debug)]
pub enum SharedMatch {
    /// The pair was already cached; nothing to publish.
    Cached(MatchSummary),
    /// The pair executed through the shared read path (a one-entry
    /// batch).
    Executed(SharedBatch),
}

impl SharedMatch {
    /// The match result, wherever it came from.
    pub fn summary(&self) -> &MatchSummary {
        match self {
            SharedMatch::Cached(s) => s,
            SharedMatch::Executed(batch) => batch.summaries().next().expect("one-entry batch"),
        }
    }
}

/// A worklist executed through the shared (`&self`) read path, ready to
/// publish with [`Repository::absorb`]: the summaries, **one** warmed
/// similarity-memo clone shared by the whole worklist, and each pair's
/// content-hash cache key captured at execution time (immune to
/// re-indexing by interleaved mutations). Batching matters: an N-pair
/// discovery request costs one memo clone and one merge, not N.
#[derive(Debug, Clone)]
pub struct SharedBatch {
    entries: Vec<((u64, u64), MatchSummary)>,
    store: SimStore,
}

impl SharedBatch {
    /// The executed summaries, in worklist order.
    pub fn summaries(&self) -> impl Iterator<Item = &MatchSummary> {
        self.entries.iter().map(|(_, s)| s)
    }

    /// Number of pairs executed in this batch.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the batch executed nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A persistent schema repository: a [`MatchSession`] plus source
/// schemas, content hashes, a per-pair summary cache, and an on-disk
/// snapshot location (DESIGN.md §8).
///
/// Schemas are keyed by their schema name ([`Schema::name`]); content
/// hashes track edits, so [`Repository::replace`] with an unchanged
/// schema is free and a real edit invalidates exactly that schema's
/// cached pairs. Nothing touches disk until [`Repository::save`].
#[derive(Debug)]
pub struct Repository<'a> {
    path: PathBuf,
    config: &'a CupidConfig,
    thesaurus: &'a Thesaurus,
    session: MatchSession<'a>,
    names: Vec<String>,
    sources: Vec<Schema>,
    hashes: Vec<u64>,
    /// (source hash, target hash) → summary, as executed.
    pair_cache: BTreeMap<(u64, u64), MatchSummary>,
    pairs_executed: usize,
    dirty: bool,
    loaded: bool,
    recovered_stale: Option<String>,
    journal: Journal,
    /// Fold the journal into a fresh snapshot once it holds this many
    /// records (`None`: only explicit saves compact).
    compact_after: Option<u64>,
    replayed_records: u64,
    compactions: u64,
    last_fsync_error: Option<String>,
    replay_discarded: Option<String>,
    /// Set when a snapshot published but both the journal reset *and*
    /// the from-scratch recreate failed: the journal header still names
    /// the old generation, so anything appended would be discarded
    /// wholesale at the next open. While set, appends are held in
    /// memory only and [`Repository::sync_journal`] fails loudly; a
    /// later successful [`Repository::save`] clears it.
    journal_broken: bool,
    /// Held for the whole handle lifetime; released on drop.
    #[allow(dead_code)]
    lock: RepoLock,
}

impl<'a> Repository<'a> {
    /// Open the repository persisted at `path` (a snapshot file, or a
    /// directory in which [`SNAPSHOT_FILE`] is used), or start an empty
    /// one if nothing is persisted yet.
    ///
    /// A snapshot whose config/thesaurus fingerprints (or container
    /// version) do not match is *discarded* and a fresh repository is
    /// returned — the stale reason is kept in
    /// [`Repository::recovered_stale`] for diagnostics. A snapshot that
    /// is damaged (checksum mismatch, malformed bytes) is an error:
    /// silent data loss is worse than a loud one.
    ///
    /// Opening acquires the snapshot's single-writer advisory lock
    /// (`<snapshot>.lock`, holder pid inside) for the lifetime of the
    /// handle; a second open of the same path — from this process or
    /// another — fails with [`RepoError::Locked`] instead of letting
    /// two `save`s clobber each other last-rename-wins. The lock is
    /// released on drop, and a lock left by a crashed process is
    /// reclaimed.
    ///
    /// After the snapshot loads, the write-ahead journal tail is
    /// replayed on top of it (DESIGN.md §10.3): a journal whose header
    /// names this snapshot generation contributes every record up to
    /// the first damage (the damaged suffix is truncated off the file);
    /// a journal from another generation — the trace of a crash between
    /// snapshot publish and journal reset — is discarded, because its
    /// records are already folded into the snapshot that was published.
    /// What recovery did is reported by [`Repository::durability`].
    pub fn open_or_create(
        path: impl AsRef<Path>,
        config: &'a CupidConfig,
        thesaurus: &'a Thesaurus,
    ) -> Result<Self, RepoError> {
        let path = resolve_path(path.as_ref());
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| RepoError::Io {
                    path: parent.to_path_buf(),
                    message: e.to_string(),
                })?;
            }
        }
        let lock = RepoLock::acquire(&path)?;
        let bytes = if path.exists() {
            Some(
                std::fs::read(&path)
                    .map_err(|e| RepoError::Io { path: path.clone(), message: e.to_string() })?,
            )
        } else {
            None
        };
        let mut state = None;
        let mut recovered_stale = None;
        if let Some(b) = &bytes {
            match snapshot::decode(b, config.fingerprint(), thesaurus.fingerprint()) {
                Ok(s) => state = Some(s),
                Err(RepoError::Stale { reason }) => recovered_stale = Some(reason),
                Err(e) => return Err(e),
            }
        }
        let header = JournalHeader {
            version: JOURNAL_VERSION,
            config_fp: config.fingerprint(),
            thesaurus_fp: thesaurus.fingerprint(),
            snapshot_id: bytes.as_deref().map(fnv1a).unwrap_or(0),
        };
        let journal_file = journal::journal_path(&path);
        let (journal, mut recovery) = Journal::open(&journal_file, header)
            .map_err(|e| RepoError::Io { path: journal_file, message: e.to_string() })?;
        let mut repo = Repository {
            path,
            config,
            thesaurus,
            session: MatchSession::new(config, thesaurus),
            names: Vec::new(),
            sources: Vec::new(),
            hashes: Vec::new(),
            pair_cache: BTreeMap::new(),
            pairs_executed: 0,
            dirty: false,
            loaded: state.is_some(),
            recovered_stale,
            journal,
            compact_after: None,
            replayed_records: 0,
            compactions: 0,
            last_fsync_error: None,
            replay_discarded: recovery.discarded.take(),
            journal_broken: false,
            lock,
        };
        if let Some(state) = state {
            repo.session = MatchSession::from_parts(
                config,
                thesaurus,
                state.table,
                state.store,
                state.prepared,
            );
            repo.names = state.names;
            repo.sources = state.sources;
            repo.hashes = state.hashes;
            repo.pair_cache = state.cache;
        }
        for record in &recovery.records {
            match repo.apply_record(record) {
                Ok(()) => repo.replayed_records += 1,
                Err(e) => {
                    // A record that passed its frame checksum but does
                    // not apply (e.g. adding a name the state already
                    // holds) means the journal does not actually extend
                    // this state; keep the valid prefix, report the
                    // rest — and cut the file back to that prefix, or
                    // every later append would sit behind a record that
                    // can never replay and be unreachable at every
                    // subsequent open.
                    let note =
                        format!("replay stopped after {} records: {e}", repo.replayed_records);
                    repo.replay_discarded = Some(match repo.replay_discarded.take() {
                        Some(prev) => format!("{prev}; {note}"),
                        None => note,
                    });
                    let keep = recovery.keep_len(repo.replayed_records as usize);
                    if let Err(te) = repo.journal.truncate_to(keep, repo.replayed_records) {
                        repo.last_fsync_error = Some(format!("journal truncate: {te}"));
                    }
                    break;
                }
            }
        }
        if repo.replayed_records > 0 {
            // Replayed mutations are durable in the journal but not yet
            // in the snapshot; a save folds them in.
            repo.dirty = true;
        }
        Ok(repo)
    }

    /// Set the worker-thread count used for pair execution.
    pub fn threads(mut self, n: usize) -> Self {
        self.session.set_threads(n);
        self
    }

    /// The snapshot file this repository persists to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// True if this handle was populated from an on-disk snapshot.
    pub fn was_loaded(&self) -> bool {
        self.loaded
    }

    /// The reason a stale snapshot was discarded at open, if one was.
    pub fn recovered_stale(&self) -> Option<&str> {
        self.recovered_stale.as_deref()
    }

    /// True if in-memory state has diverged from the snapshot file.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Number of schemas in the repository.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if the repository holds no schemas.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Schema names, in repository order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// True if a schema with this name is present.
    pub fn contains(&self, name: &str) -> bool {
        self.names.iter().any(|n| n == name)
    }

    /// The source schema graph stored under `name`.
    pub fn schema(&self, name: &str) -> Option<&Schema> {
        self.index_of(name).ok().map(|i| &self.sources[i])
    }

    /// Full pair executions since this handle was opened.
    pub fn pairs_executed(&self) -> usize {
        self.pairs_executed
    }

    /// Aggregate counters.
    pub fn stats(&self) -> RepositoryStats {
        RepositoryStats {
            schemas: self.names.len(),
            cached_pairs: self.pair_cache.len(),
            pairs_executed: self.pairs_executed,
            session: self.session.stats(),
        }
    }

    /// Durability-layer counters: journal size, what recovery replayed
    /// or discarded at open, compactions, and the last persistence
    /// failure (DESIGN.md §10.6).
    pub fn durability(&self) -> DurabilityStats {
        DurabilityStats {
            journal_records: self.journal.records(),
            journal_bytes: self.journal.bytes_len(),
            replayed_records: self.replayed_records,
            compactions: self.compactions,
            last_fsync_error: self.last_fsync_error.clone(),
            replay_discarded: self.replay_discarded.clone(),
        }
    }

    /// Set the compaction threshold: once the journal holds this many
    /// records, the next mutation folds it into a fresh snapshot via
    /// [`Repository::save`]. `None` (the default) compacts only on
    /// explicit saves.
    pub fn set_compact_after(&mut self, limit: Option<u64>) {
        self.compact_after = limit;
    }

    /// Fsync the write-ahead journal: every mutation made through this
    /// handle is durable once this returns — the cheap per-mutation
    /// durability point the daemon's autosave uses in place of a full
    /// snapshot rewrite. On failure the error is also recorded in
    /// [`Repository::durability`]'s `last_fsync_error`. Fails without
    /// syncing while the journal generation is broken (a snapshot
    /// published but the journal could not be re-headed): an fsync of a
    /// file the next open will discard wholesale must not be
    /// acknowledged as durability.
    pub fn sync_journal(&mut self) -> Result<(), RepoError> {
        if self.journal_broken {
            return Err(RepoError::Io {
                path: self.journal.path().to_path_buf(),
                message: "journal generation broken (reset failed after snapshot publish); \
                          mutations are not journal-durable until a save succeeds"
                    .to_string(),
            });
        }
        self.journal.sync().map_err(|e| {
            let message = e.to_string();
            self.last_fsync_error = Some(format!("journal fsync: {message}"));
            RepoError::Io { path: self.journal.path().to_path_buf(), message }
        })
    }

    fn index_of(&self, name: &str) -> Result<usize, RepoError> {
        self.names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| RepoError::UnknownName(name.to_string()))
    }

    /// Apply one mutation without journaling it — the replay path of
    /// [`Repository::open_or_create`], and the shared core of the
    /// public mutators.
    fn apply_record(&mut self, record: &JournalRecord) -> Result<(), RepoError> {
        match record {
            JournalRecord::Add(s) => self.apply_add(s),
            JournalRecord::Replace(s) => self.apply_replace(s).map(|_| ()),
            JournalRecord::Remove(name) => self.apply_remove(name).map(|_| ()),
        }
    }

    /// Append a record for a mutation that just succeeded in memory,
    /// then compact if the journal crossed its threshold. Journal I/O
    /// failure does not roll the mutation back — the in-memory state is
    /// already committed and still saveable — but the degradation is
    /// recorded for [`Repository::durability`].
    fn journal_append(&mut self, record: JournalRecord) {
        self.journal_append_raw(record);
        self.maybe_compact();
    }

    /// The append half of [`Repository::journal_append`], without the
    /// compaction check. Batch mutators journal **all** their records
    /// first and run the threshold check once: a compaction firing
    /// mid-batch would fold the whole batch (already in memory) into
    /// the snapshot and then append the remaining records to the new
    /// journal generation, where they describe mutations the snapshot
    /// already holds — at replay the first of them fails to apply and
    /// everything after it is unreachable.
    fn journal_append_raw(&mut self, record: JournalRecord) {
        if self.journal_broken {
            self.last_fsync_error = Some(
                "journal generation broken (reset failed); mutation held in memory \
                 only until the next save"
                    .to_string(),
            );
            return;
        }
        if let Err(e) = self.journal.append(&record) {
            self.last_fsync_error = Some(format!("journal append: {e}"));
        }
    }

    /// Fold the journal into a fresh snapshot if it crossed the
    /// compaction threshold.
    fn maybe_compact(&mut self) {
        if let Some(limit) = self.compact_after {
            if self.journal.records() >= limit {
                if let Err(e) = self.save() {
                    self.last_fsync_error = Some(format!("compaction save: {e}"));
                }
            }
        }
    }

    fn apply_add(&mut self, schema: &Schema) -> Result<(), RepoError> {
        if self.contains(schema.name()) {
            return Err(RepoError::DuplicateName(schema.name().to_string()));
        }
        self.session.add(schema)?;
        self.names.push(schema.name().to_string());
        self.sources.push(schema.clone());
        self.hashes.push(schema.content_hash());
        self.dirty = true;
        Ok(())
    }

    /// Add a schema, keyed by its schema name.
    pub fn add(&mut self, schema: &Schema) -> Result<(), RepoError> {
        self.apply_add(schema)?;
        self.journal_append(JournalRecord::Add(schema.clone()));
        Ok(())
    }

    /// Add a whole corpus. All-or-nothing like
    /// [`MatchSession::add_corpus`]: name collisions (against the
    /// repository or within the batch) and preparation errors are
    /// reported before anything is added. Journals one record per
    /// schema.
    pub fn add_corpus(&mut self, schemas: &[Schema]) -> Result<(), RepoError> {
        let mut batch: BTreeSet<&str> = BTreeSet::new();
        for s in schemas {
            if self.contains(s.name()) || !batch.insert(s.name()) {
                return Err(RepoError::DuplicateName(s.name().to_string()));
            }
        }
        self.session.add_corpus(schemas)?;
        for s in schemas {
            self.names.push(s.name().to_string());
            self.sources.push(s.clone());
            self.hashes.push(s.content_hash());
        }
        self.dirty = true;
        for s in schemas {
            self.journal_append_raw(JournalRecord::Add(s.clone()));
        }
        self.maybe_compact();
        Ok(())
    }

    /// Replace, returning whether the content actually changed.
    fn apply_replace(&mut self, schema: &Schema) -> Result<bool, RepoError> {
        let i = self.index_of(schema.name())?;
        let hash = schema.content_hash();
        if hash == self.hashes[i] {
            return Ok(false);
        }
        self.session.replace(SchemaId::from_index(i), schema)?;
        self.sources[i] = schema.clone();
        self.hashes[i] = hash;
        self.dirty = true;
        Ok(true)
    }

    /// Replace the stored schema with the same name. A no-op when the
    /// content hash is unchanged (the pair cache stays fully valid, and
    /// nothing is journaled); otherwise the schema is re-prepared and
    /// its cached pairs become unreachable, so the next match
    /// re-executes exactly this schema's pairs.
    pub fn replace(&mut self, schema: &Schema) -> Result<(), RepoError> {
        if self.apply_replace(schema)? {
            self.journal_append(JournalRecord::Replace(schema.clone()));
        }
        Ok(())
    }

    fn apply_remove(&mut self, name: &str) -> Result<Schema, RepoError> {
        let i = self.index_of(name)?;
        self.session.remove(SchemaId::from_index(i));
        self.names.remove(i);
        self.hashes.remove(i);
        self.dirty = true;
        Ok(self.sources.remove(i))
    }

    /// Remove (and return) the schema stored under `name`.
    pub fn remove(&mut self, name: &str) -> Result<Schema, RepoError> {
        let schema = self.apply_remove(name)?;
        self.journal_append(JournalRecord::Remove(name.to_string()));
        Ok(schema)
    }

    /// Execute the uncached subset of a worklist and fill the cache.
    fn execute_missing(&mut self, pairs: &[(usize, usize)]) {
        let mut need: BTreeSet<(u64, u64)> = BTreeSet::new();
        let mut worklist: Vec<(SchemaId, SchemaId)> = Vec::new();
        for &(i, j) in pairs {
            let key = (self.hashes[i], self.hashes[j]);
            if !self.pair_cache.contains_key(&key) && need.insert(key) {
                worklist.push((SchemaId::from_index(i), SchemaId::from_index(j)));
            }
        }
        if worklist.is_empty() {
            return;
        }
        let summaries = self.session.match_pairs(&worklist);
        self.pairs_executed += worklist.len();
        self.dirty = true;
        for s in summaries {
            let key = (self.hashes[s.source.index()], self.hashes[s.target.index()]);
            self.pair_cache.insert(key, s);
        }
    }

    /// A cached summary re-anchored to the current indices `(i, j)`.
    /// Valid because everything in a summary except the two ids is a
    /// pure function of the schemas' *content* (plus config and
    /// thesaurus, which are fingerprint-pinned).
    fn serve(&self, i: usize, j: usize) -> MatchSummary {
        let key = (self.hashes[i], self.hashes[j]);
        let mut s = self.pair_cache.get(&key).expect("pair executed or cached").clone();
        s.source = SchemaId::from_index(i);
        s.target = SchemaId::from_index(j);
        s
    }

    /// Match every unordered schema pair, serving cached pairs from the
    /// persisted summary cache and executing only the rest. Summaries
    /// come back in lexicographic `(i, j)` order, `i < j`, exactly like
    /// [`MatchSession::match_all_pairs`] — and bit-identical to it.
    pub fn match_all_pairs(&mut self) -> Vec<MatchSummary> {
        let n = self.names.len();
        let mut pairs = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                pairs.push((i, j));
            }
        }
        self.execute_missing(&pairs);
        pairs.into_iter().map(|(i, j)| self.serve(i, j)).collect()
    }

    /// Match one named pair (cached or executed).
    pub fn match_pair(&mut self, source: &str, target: &str) -> Result<MatchSummary, RepoError> {
        let i = self.index_of(source)?;
        let j = self.index_of(target)?;
        self.execute_missing(&[(i, j)]);
        Ok(self.serve(i, j))
    }

    /// The cached summary of a named pair, through a shared (`&self`)
    /// handle — the pure read path of the daemon's read/write split
    /// (DESIGN.md §9). `None` if the pair has not been executed under
    /// the current content hashes.
    pub fn cached_pair(
        &self,
        source: &str,
        target: &str,
    ) -> Result<Option<MatchSummary>, RepoError> {
        let i = self.index_of(source)?;
        let j = self.index_of(target)?;
        Ok(self.cached_pair_at(i, j))
    }

    /// [`Repository::cached_pair`] by repository indices (the discovery
    /// index speaks indices). Panics if an index is out of bounds.
    pub fn cached_pair_at(&self, i: usize, j: usize) -> Option<MatchSummary> {
        let key = (self.hashes[i], self.hashes[j]);
        self.pair_cache.get(&key).map(|s| {
            let mut s = s.clone();
            s.source = SchemaId::from_index(i);
            s.target = SchemaId::from_index(j);
            s
        })
    }

    /// Match one named pair through a shared (`&self`) handle. A cached
    /// pair is served directly ([`SharedMatch::Cached`]); an uncached
    /// pair executes over a clone of the warm session memo
    /// ([`MatchSession::match_pair_shared`]) and comes back as a
    /// [`SharedMatch::Executed`] one-entry batch carrying the warmed
    /// memo clone and the pair's content-hash cache key, for the
    /// caller to publish via [`Repository::absorb`] under exclusive
    /// access. Summaries are bit-identical to
    /// [`Repository::match_pair`] either way.
    pub fn match_pair_shared(&self, source: &str, target: &str) -> Result<SharedMatch, RepoError> {
        let i = self.index_of(source)?;
        let j = self.index_of(target)?;
        match self.cached_pair_at(i, j) {
            Some(s) => Ok(SharedMatch::Cached(s)),
            None => Ok(SharedMatch::Executed(self.execute_pairs_shared(&[(i, j)]))),
        }
    }

    /// Explain one named pair: per-mapping score provenance (lsim/ssim/
    /// wsim breakdown, top token pairs, structural context, threshold
    /// decisions; DESIGN.md §14). Always re-executes the pair — an
    /// explanation carries strictly more than the cached summary — but
    /// the scores are bit-identical to what the summary reports, and
    /// every explanation recomposes to its `wsim` bit-exactly.
    pub fn explain(&mut self, source: &str, target: &str) -> Result<PairExplanation, RepoError> {
        let i = self.index_of(source)?;
        let j = self.index_of(target)?;
        Ok(self.session.explain_pair(SchemaId::from_index(i), SchemaId::from_index(j)))
    }

    /// The shared (`&self`) form of [`Repository::explain`], mirroring
    /// [`Repository::match_pair_shared`]: the pair is explained over a
    /// clone of the warm session memo, which is returned for the caller
    /// to publish via [`Repository::absorb_store`] (or drop).
    pub fn explain_shared(
        &self,
        source: &str,
        target: &str,
    ) -> Result<(PairExplanation, SimStore), RepoError> {
        let i = self.index_of(source)?;
        let j = self.index_of(target)?;
        Ok(self.session.explain_pair_shared(SchemaId::from_index(i), SchemaId::from_index(j)))
    }

    /// Merge a warmed memo clone from [`Repository::explain_shared`]
    /// back into the session. Unlike [`Repository::absorb`] this
    /// publishes no summaries and counts no executions — explanations
    /// are diagnostics, not matches.
    pub fn absorb_store(&mut self, store: SimStore) {
        self.session.absorb(store, 0);
    }

    /// Execute a worklist of pairs (by repository indices) over **one**
    /// clone of the warm session memo, without mutating the repository
    /// ([`MatchSession::match_pairs_shared`]). The returned
    /// [`SharedBatch`] records each pair's content-hash cache key *as
    /// of this call*, so publishing it later through
    /// [`Repository::absorb`] stays correct even if an interleaved
    /// mutation re-indexed or replaced schemas in between. Panics if an
    /// index is out of bounds.
    pub fn execute_pairs_shared(&self, pairs: &[(usize, usize)]) -> SharedBatch {
        let worklist: Vec<(SchemaId, SchemaId)> = pairs
            .iter()
            .map(|&(i, j)| (SchemaId::from_index(i), SchemaId::from_index(j)))
            .collect();
        let (summaries, store) = self.session.match_pairs_shared(&worklist);
        let entries = pairs
            .iter()
            .zip(summaries)
            .map(|(&(i, j), s)| ((self.hashes[i], self.hashes[j]), s))
            .collect();
        SharedBatch { entries, store }
    }

    /// Absorb a batch from the shared path: insert each summary into
    /// the pair cache under the content-hash key captured at execution
    /// time, and merge the warmed store clone back into the session
    /// memo. The write half of the read/write split — call it under
    /// exclusive access. Absorbing the same pair twice is harmless (the
    /// summary is a pure function of schema content, so the insert
    /// overwrites an identical value), and an execution whose schemas
    /// were meanwhile replaced or removed parks under a dead key that
    /// the next [`Repository::save`] prunes.
    pub fn absorb(&mut self, batch: SharedBatch) {
        if batch.entries.is_empty() {
            return;
        }
        let executed = batch.entries.len();
        for (key, summary) in batch.entries {
            self.pair_cache.insert(key, summary);
        }
        self.session.absorb(batch.store, executed);
        self.pairs_executed += executed;
        self.dirty = true;
    }

    /// Index-assisted discovery (DESIGN.md §8.4): build the
    /// [`DiscoveryIndex`], take each schema's top-`k` candidates by
    /// leaf-token overlap, and execute only that pruned worklist.
    /// Returns the executed pairs' summaries in `(i, j)` order; rank
    /// them by [`MatchSummary::best_wsim`] for a discovery listing.
    /// The recall/pruning trade-off is measured by the eval harness's
    /// `retrieval` experiment.
    pub fn top_k_pairs(&mut self, k: usize) -> Vec<MatchSummary> {
        let pairs = self.discovery_index().top_k_pairs(k);
        self.execute_missing(&pairs);
        pairs.into_iter().map(|(i, j)| self.serve(i, j)).collect()
    }

    /// Build the discovery index over the current corpus. Positions
    /// match [`Repository::names`] order.
    pub fn discovery_index(&self) -> DiscoveryIndex {
        DiscoveryIndex::build(self.session.prepared())
    }

    /// The linguistic similarity table of a named pair, computed
    /// through the session memo (diagnostics and the bit-identity test
    /// suite).
    pub fn lsim_of(&mut self, source: &str, target: &str) -> Result<LsimTable, RepoError> {
        let i = self.index_of(source)?;
        let j = self.index_of(target)?;
        Ok(self.session.lsim_of(SchemaId::from_index(i), SchemaId::from_index(j)))
    }

    /// Persist the repository to its snapshot file and fold the journal
    /// into the new snapshot generation. Cache entries keyed by hashes
    /// no longer in the corpus (from
    /// [`Repository::replace`]/[`Repository::remove`]) are pruned
    /// first, so snapshots do not grow monotonically.
    ///
    /// The crash-safe sequence (DESIGN.md §10.2): write the snapshot to
    /// a temp file, `fsync` it, rename it over the snapshot, `fsync`
    /// the parent directory — only then truncate the journal and write
    /// a fresh fsynced header naming the new snapshot's content id. A
    /// crash before the rename leaves the old snapshot + journal pair
    /// intact; a crash after the rename but before the journal reset
    /// leaves a journal whose header names the *old* generation, which
    /// the next open detects and discards (its records are in the
    /// snapshot that was published). At no point can a record be lost
    /// or replayed twice.
    pub fn save(&mut self) -> Result<(), RepoError> {
        let live: BTreeSet<u64> = self.hashes.iter().copied().collect();
        self.pair_cache.retain(|(a, b), _| live.contains(a) && live.contains(b));
        let refs = snapshot::SnapshotRefs {
            names: &self.names,
            hashes: &self.hashes,
            sources: &self.sources,
            prepared: self.session.prepared(),
            table: self.session.table(),
            store: self.session.store(),
            cache: &self.pair_cache,
        };
        let bytes =
            snapshot::encode(&refs, self.config.fingerprint(), self.thesaurus.fingerprint());
        let tmp = self.path.with_extension("tmp");
        let io_err = |path: &Path, e: std::io::Error| RepoError::Io {
            path: path.to_path_buf(),
            message: e.to_string(),
        };
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| io_err(parent, e))?;
            }
        }
        {
            let mut file = std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
            fault::write_all(fault::FaultPoint::SnapshotWrite, &tmp, &mut file, &bytes)
                .map_err(|e| io_err(&tmp, e))?;
            // fsync before the rename: without it, the rename can
            // become durable ahead of the data it points at, and a
            // crash surfaces an empty or torn "successfully saved"
            // snapshot.
            fault::sync(fault::FaultPoint::SnapshotSync, &tmp, &file)
                .map_err(|e| io_err(&tmp, e))?;
        }
        fault::rename(&tmp, &self.path).map_err(|e| io_err(&self.path, e))?;
        fault::sync_parent_dir(&self.path).map_err(|e| io_err(&self.path, e))?;
        let had_records = self.journal.records() > 0;
        let header = JournalHeader {
            version: JOURNAL_VERSION,
            config_fp: self.config.fingerprint(),
            thesaurus_fp: self.thesaurus.fingerprint(),
            snapshot_id: fnv1a(&bytes),
        };
        match self.journal.reset(header) {
            Ok(()) => {
                self.journal_broken = false;
                if had_records {
                    self.compactions += 1;
                }
            }
            Err(e) => {
                // The snapshot is already durable and the un-reset
                // journal names the old generation, so a reopen
                // discards it rather than double-replaying; record the
                // degradation and try once to restart the file cleanly.
                self.last_fsync_error = Some(format!("journal reset: {e}"));
                let journal_file = self.journal.path().to_path_buf();
                match Journal::create(&journal_file, header) {
                    Ok(j) => {
                        self.journal = j;
                        self.journal_broken = false;
                        if had_records {
                            self.compactions += 1;
                        }
                    }
                    Err(e2) => {
                        // Both the reset and the recreate failed: the
                        // file's header still names the old generation,
                        // so every record appended now would be
                        // discarded wholesale at the next open. Stop
                        // appending and fail sync_journal until a later
                        // save restores a valid header — acknowledging
                        // doomed appends as durable would be silent
                        // data loss.
                        self.journal_broken = true;
                        self.last_fsync_error = Some(format!("journal reset: {e}; recreate: {e2}"));
                    }
                }
            }
        }
        self.dirty = false;
        Ok(())
    }

    /// Export the schema stored under `name` as an SDL document — the
    /// reproduction's native text format — for review, diffing, or
    /// re-import into another repository.
    pub fn export_sdl(&self, name: &str) -> Result<String, RepoError> {
        let i = self.index_of(name)?;
        cupid_io::sdl::write_sdl(&self.sources[i])
            .map_err(|e| RepoError::Export { name: name.to_string(), message: e.to_string() })
    }

    /// Parse an SDL document and add it, returning the schema's name.
    pub fn import_sdl(&mut self, text: &str) -> Result<String, RepoError> {
        let schema = cupid_io::parse_sdl(text).map_err(RepoError::Import)?;
        let name = schema.name().to_string();
        self.add(&schema)?;
        Ok(name)
    }
}

/// Resolve a user-supplied path: directories get the default snapshot
/// file name appended.
fn resolve_path(path: &Path) -> PathBuf {
    if path.is_dir() {
        path.join(SNAPSHOT_FILE)
    } else {
        path.to_path_buf()
    }
}

/// Extension trait putting `repository()` on the [`Cupid`] facade —
/// the open-or-create entry point of the persistence subsystem.
///
/// A separate trait (rather than an inherent method) because `Cupid`
/// lives in `cupid-core`, which this crate builds on top of.
pub trait CupidRepositoryExt {
    /// Open (or create) the repository persisted at `path`, bound to
    /// this matcher's configuration and thesaurus.
    fn repository<P: AsRef<Path>>(&self, path: P) -> Result<Repository<'_>, RepoError>;
}

impl CupidRepositoryExt for Cupid {
    fn repository<P: AsRef<Path>>(&self, path: P) -> Result<Repository<'_>, RepoError> {
        Repository::open_or_create(path, self.config(), self.thesaurus())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cupid_model::{DataType, ElementKind, SchemaBuilder};
    use std::sync::atomic::{AtomicU32, Ordering};

    /// A unique, self-cleaning snapshot location per test.
    struct TempRepo(PathBuf);

    impl TempRepo {
        fn new() -> Self {
            static SEQ: AtomicU32 = AtomicU32::new(0);
            let dir = std::env::temp_dir().join(format!(
                "cupid-repo-test-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir).unwrap();
            TempRepo(dir.join(SNAPSHOT_FILE))
        }
    }

    impl Drop for TempRepo {
        fn drop(&mut self) {
            if let Some(dir) = self.0.parent() {
                std::fs::remove_dir_all(dir).ok();
            }
        }
    }

    fn schema(name: &str, container: &str, fields: &[(&str, DataType)]) -> Schema {
        let mut b = SchemaBuilder::new(name);
        let c = b.structured(b.root(), container, ElementKind::XmlElement);
        for (f, dt) in fields {
            b.atomic(c, *f, ElementKind::XmlElement, *dt);
        }
        b.build().unwrap()
    }

    fn corpus() -> Vec<Schema> {
        vec![
            schema("S0", "Item", &[("Qty", DataType::Int), ("Invoice", DataType::String)]),
            schema("S1", "Item", &[("Quantity", DataType::Int), ("Bill", DataType::String)]),
            schema("S2", "Order", &[("Quantity", DataType::Int)]),
            schema("S3", "Thing", &[("Unrelated", DataType::Date)]),
        ]
    }

    #[test]
    fn save_load_serves_everything_from_cache() {
        let tmp = TempRepo::new();
        let config = CupidConfig::default();
        let th = Thesaurus::with_default_stopwords();
        let want;
        {
            let mut repo = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
            assert!(!repo.was_loaded());
            repo.add_corpus(&corpus()).unwrap();
            want = repo.match_all_pairs();
            assert_eq!(repo.pairs_executed(), 6);
            repo.save().unwrap();
            assert!(!repo.is_dirty());
        }
        let mut warm = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
        assert!(warm.was_loaded());
        assert_eq!(warm.names(), ["S0", "S1", "S2", "S3"]);
        let got = warm.match_all_pairs();
        assert_eq!(got, want, "loaded repository must serve bit-identical summaries");
        assert_eq!(warm.pairs_executed(), 0, "everything served from the persisted cache");
    }

    #[test]
    fn replace_reexecutes_only_that_schemas_pairs() {
        let tmp = TempRepo::new();
        let config = CupidConfig::default();
        let th = Thesaurus::with_default_stopwords();
        let mut repo = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
        repo.add_corpus(&corpus()).unwrap();
        repo.match_all_pairs();
        assert_eq!(repo.pairs_executed(), 6);
        // Unchanged replace: free.
        repo.replace(&corpus()[1]).unwrap();
        repo.match_all_pairs();
        assert_eq!(repo.pairs_executed(), 6);
        // Real edit: exactly S1's 3 pairs re-execute.
        let edited =
            schema("S1", "Item", &[("Quantity", DataType::Int), ("Total", DataType::Money)]);
        repo.replace(&edited).unwrap();
        let summaries = repo.match_all_pairs();
        assert_eq!(repo.pairs_executed(), 9, "only the edited schema's 3 pairs run again");
        // And the result equals a cold rebuild, bit for bit.
        let tmp2 = TempRepo::new();
        let mut cold = Repository::open_or_create(&tmp2.0, &config, &th).unwrap();
        let mut fresh = corpus();
        fresh[1] = edited;
        cold.add_corpus(&fresh).unwrap();
        assert_eq!(cold.match_all_pairs(), summaries);
    }

    #[test]
    fn remove_and_reindex() {
        let tmp = TempRepo::new();
        let config = CupidConfig::default();
        let th = Thesaurus::with_default_stopwords();
        let mut repo = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
        repo.add_corpus(&corpus()).unwrap();
        repo.match_all_pairs();
        let removed = repo.remove("S1").unwrap();
        assert_eq!(removed.name(), "S1");
        assert!(!repo.contains("S1"));
        assert_eq!(repo.len(), 3);
        let executed = repo.pairs_executed();
        let summaries = repo.match_all_pairs();
        assert_eq!(summaries.len(), 3);
        assert_eq!(repo.pairs_executed(), executed, "surviving pairs come from cache");
        assert_eq!(summaries[0].source.index(), 0);
        assert_eq!(summaries[0].target.index(), 1, "ids re-anchored after the shift");
        assert!(repo.remove("S1").is_err());
    }

    #[test]
    fn stale_config_discards_snapshot() {
        let tmp = TempRepo::new();
        let th = Thesaurus::with_default_stopwords();
        let config = CupidConfig::default();
        {
            let mut repo = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
            repo.add_corpus(&corpus()).unwrap();
            repo.match_all_pairs();
            repo.save().unwrap();
        }
        let mut other = CupidConfig::default();
        other.th_accept = 0.45;
        let repo = Repository::open_or_create(&tmp.0, &other, &th).unwrap();
        assert!(!repo.was_loaded());
        assert!(repo.recovered_stale().unwrap().contains("config fingerprint"));
        assert!(repo.is_empty());
        drop(repo); // release the single-writer lock before reopening
                    // Different thesaurus: also stale.
        let th2 = Thesaurus::empty();
        let repo = Repository::open_or_create(&tmp.0, &config, &th2).unwrap();
        assert!(repo.recovered_stale().unwrap().contains("thesaurus fingerprint"));
    }

    #[test]
    fn corrupt_snapshot_is_a_loud_error() {
        let tmp = TempRepo::new();
        let th = Thesaurus::with_default_stopwords();
        let config = CupidConfig::default();
        {
            let mut repo = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
            repo.add(&corpus()[0]).unwrap();
            repo.save().unwrap();
        }
        let mut bytes = std::fs::read(&tmp.0).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&tmp.0, &bytes).unwrap();
        match Repository::open_or_create(&tmp.0, &config, &th) {
            Err(RepoError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_and_unknown_names() {
        let tmp = TempRepo::new();
        let th = Thesaurus::with_default_stopwords();
        let config = CupidConfig::default();
        let mut repo = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
        repo.add(&corpus()[0]).unwrap();
        assert!(matches!(repo.add(&corpus()[0]), Err(RepoError::DuplicateName(_))));
        assert!(matches!(repo.match_pair("S0", "Nope"), Err(RepoError::UnknownName(_))));
        assert!(repo.schema("S0").is_some());
        assert!(repo.schema("Nope").is_none());
        // batch-internal duplicate
        let batch = vec![corpus()[1].clone(), corpus()[1].clone()];
        assert!(matches!(repo.add_corpus(&batch), Err(RepoError::DuplicateName(_))));
        assert_eq!(repo.len(), 1, "failed batch adds nothing");
    }

    #[test]
    fn facade_extension_opens_repositories() {
        let tmp = TempRepo::new();
        let cupid = Cupid::new(Thesaurus::with_default_stopwords());
        let mut repo = cupid.repository(&tmp.0).unwrap();
        repo.add(&corpus()[0]).unwrap();
        repo.add(&corpus()[1]).unwrap();
        let s = repo.match_pair("S0", "S1").unwrap();
        assert!(s.has_leaf_mapping("S0.Item.Qty", "S1.Item.Quantity") || s.total_pairs > 0);
        repo.save().unwrap();
        assert!(tmp.0.exists());
    }

    #[test]
    fn concurrent_open_is_refused_until_drop() {
        let tmp = TempRepo::new();
        let config = CupidConfig::default();
        let th = Thesaurus::with_default_stopwords();
        let repo = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
        match Repository::open_or_create(&tmp.0, &config, &th) {
            Err(RepoError::Locked { pid, .. }) => assert_eq!(pid, std::process::id()),
            other => panic!("expected Locked, got {other:?}"),
        }
        drop(repo);
        // Lock released with the handle: the reopen succeeds.
        let again = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
        assert!(!again.was_loaded());
    }

    #[test]
    fn shared_reads_and_absorb_agree_with_exclusive_path() {
        let tmp = TempRepo::new();
        let config = CupidConfig::default();
        let th = Thesaurus::with_default_stopwords();
        let mut repo = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
        repo.add_corpus(&corpus()).unwrap();
        // Uncached: the shared path executes over a memo clone...
        let batch = match repo.match_pair_shared("S0", "S1").unwrap() {
            SharedMatch::Executed(batch) => batch,
            other => panic!("uncached pair must execute, got {other:?}"),
        };
        assert_eq!(batch.len(), 1);
        let shared = batch.summaries().next().unwrap().clone();
        assert_eq!(repo.pairs_executed(), 0, "shared execution is not yet absorbed");
        assert!(repo.cached_pair("S0", "S1").unwrap().is_none());
        // ...absorbing publishes it...
        repo.absorb(batch);
        assert_eq!(repo.pairs_executed(), 1);
        assert_eq!(repo.cached_pair("S0", "S1").unwrap().as_ref(), Some(&shared));
        // ...and the exclusive path serves the identical summary.
        assert_eq!(repo.match_pair("S0", "S1").unwrap(), shared);
        // A cached pair serves directly through the shared path too.
        match repo.match_pair_shared("S0", "S1").unwrap() {
            SharedMatch::Cached(s) => assert_eq!(s, shared),
            other => panic!("cached pair must serve from cache, got {other:?}"),
        }
        // A whole worklist executes over one memo clone, and an
        // execution published after its schema was replaced parks
        // under the old (now dead) key instead of corrupting the cache.
        let stale = repo.execute_pairs_shared(&[(2, 3), (1, 2)]);
        assert_eq!(stale.len(), 2);
        let edited = schema("S2", "Order", &[("Qty", DataType::Int)]);
        repo.replace(&edited).unwrap();
        repo.absorb(stale);
        assert!(
            repo.cached_pair("S2", "S3").unwrap().is_none(),
            "stale execution must not serve for the replaced schema"
        );
    }

    #[test]
    fn top_k_executes_fewer_pairs_than_all_pairs() {
        let tmp = TempRepo::new();
        let th = Thesaurus::with_default_stopwords();
        let config = CupidConfig::default();
        let mut repo = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
        // Two clear domains with zero cross-domain token overlap.
        repo.add_corpus(&[
            schema("C1", "Customer", &[("CustomerName", DataType::String)]),
            schema("C2", "Customer", &[("CustomerName", DataType::String)]),
            schema("O1", "Order", &[("OrderDate", DataType::Date)]),
            schema("O2", "Order", &[("OrderDate", DataType::Date)]),
        ])
        .unwrap();
        let pruned = repo.top_k_pairs(1);
        assert!(repo.pairs_executed() < 6, "pruned discovery beats the 6-pair full worklist");
        let best: Vec<(usize, usize)> = pruned
            .iter()
            .filter(|s| s.best_wsim() > 0.5)
            .map(|s| (s.source.index(), s.target.index()))
            .collect();
        assert!(best.contains(&(0, 1)), "C1~C2 retrieved");
        assert!(best.contains(&(2, 3)), "O1~O2 retrieved");
    }

    #[test]
    fn journal_replays_unsaved_mutations_bit_identically() {
        let tmp = TempRepo::new();
        let config = CupidConfig::default();
        let th = Thesaurus::with_default_stopwords();
        let edited =
            schema("S1", "Item", &[("Quantity", DataType::Int), ("Total", DataType::Money)]);
        let extra = schema("S4", "Extra", &[("Qty", DataType::Int)]);
        {
            let mut repo = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
            repo.add_corpus(&corpus()).unwrap();
            repo.save().unwrap();
            // Mutations after the save are durable through the journal
            // alone — no second save.
            repo.add(&extra).unwrap();
            repo.replace(&edited).unwrap();
            repo.remove("S3").unwrap();
            repo.sync_journal().unwrap();
            let d = repo.durability();
            assert_eq!(d.journal_records, 3);
            assert!(d.journal_bytes > 0);
            assert!(d.last_fsync_error.is_none());
        }
        let mut warm = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
        assert!(warm.was_loaded());
        assert_eq!(warm.names(), ["S0", "S1", "S2", "S4"]);
        let d = warm.durability();
        assert_eq!(d.replayed_records, 3);
        assert!(d.replay_discarded.is_none(), "clean replay: {:?}", d.replay_discarded);
        assert!(warm.is_dirty(), "replayed records await folding into the snapshot");
        // The replayed repository matches bit-identically to a cold
        // rebuild of the same corpus in the same order.
        let got = warm.match_all_pairs();
        let tmp2 = TempRepo::new();
        let mut cold = Repository::open_or_create(&tmp2.0, &config, &th).unwrap();
        let c = corpus();
        cold.add_corpus(&[c[0].clone(), edited, c[2].clone(), extra]).unwrap();
        assert_eq!(cold.match_all_pairs(), got);
    }

    #[test]
    fn save_folds_journal_and_counts_compactions() {
        let tmp = TempRepo::new();
        let config = CupidConfig::default();
        let th = Thesaurus::with_default_stopwords();
        let mut repo = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
        repo.add(&corpus()[0]).unwrap();
        assert_eq!(repo.durability().journal_records, 1);
        repo.save().unwrap();
        let d = repo.durability();
        assert_eq!(d.journal_records, 0, "save folds the journal into the snapshot");
        assert_eq!(d.compactions, 1);
        // An empty-journal save is not a compaction.
        repo.save().unwrap();
        assert_eq!(repo.durability().compactions, 1);
        assert!(journal::journal_path(&tmp.0).exists());
    }

    #[test]
    fn threshold_compaction_triggers_mid_mutation_stream() {
        let tmp = TempRepo::new();
        let config = CupidConfig::default();
        let th = Thesaurus::with_default_stopwords();
        let mut repo = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
        repo.set_compact_after(Some(3));
        for s in &corpus() {
            repo.add(s).unwrap();
        }
        let d = repo.durability();
        assert_eq!(d.compactions, 1, "the third record crossed the threshold");
        assert_eq!(d.journal_records, 1, "the fourth add landed in the fresh journal");
        assert!(tmp.0.exists(), "compaction produced a snapshot");
        drop(repo);
        let warm = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
        assert_eq!(warm.len(), 4);
        assert_eq!(warm.durability().replayed_records, 1);
    }

    #[test]
    fn journal_from_previous_generation_is_discarded_not_replayed_twice() {
        let tmp = TempRepo::new();
        let config = CupidConfig::default();
        let th = Thesaurus::with_default_stopwords();
        let journal_file = journal::journal_path(&tmp.0);
        {
            let mut repo = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
            repo.add(&corpus()[0]).unwrap();
            repo.sync_journal().unwrap();
            // Crash between snapshot publish and journal reset,
            // simulated by restoring the pre-save journal afterwards.
            let pre_save = std::fs::read(&journal_file).unwrap();
            repo.save().unwrap();
            std::fs::write(&journal_file, &pre_save).unwrap();
        }
        let warm = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
        assert_eq!(warm.len(), 1, "the record is in the snapshot exactly once");
        let d = warm.durability();
        assert_eq!(d.replayed_records, 0);
        assert!(
            d.replay_discarded.unwrap().contains("extends snapshot"),
            "the stale journal is discarded with its reason surfaced"
        );
    }

    #[test]
    fn injected_snapshot_faults_never_lose_synced_mutations() {
        let config = CupidConfig::default();
        let th = Thesaurus::with_default_stopwords();
        // Each scenario arms one fault on the save path; a synced
        // journal record must survive every one of them.
        for (point, action) in [
            (fault::FaultPoint::SnapshotWrite, fault::FaultAction::Error),
            (fault::FaultPoint::SnapshotWrite, fault::FaultAction::ShortWrite(5)),
            (fault::FaultPoint::SnapshotSync, fault::FaultAction::Error),
            (fault::FaultPoint::SnapshotRename, fault::FaultAction::Error),
        ] {
            let tmp = TempRepo::new();
            let marker = tmp.0.parent().unwrap().file_name().unwrap().to_str().unwrap();
            {
                let mut repo = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
                repo.add(&corpus()[0]).unwrap();
                repo.save().unwrap();
                repo.add(&corpus()[1]).unwrap();
                repo.sync_journal().unwrap();
                fault::arm(fault::Fault {
                    point,
                    path_contains: marker.to_string(),
                    skip: 0,
                    action,
                });
                let err = repo.save();
                assert!(err.is_err(), "{point:?}/{action:?} must fail the save");
                assert!(repo.is_dirty(), "a failed save leaves the handle dirty");
            }
            fault::disarm(marker);
            let warm = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
            assert_eq!(
                warm.names(),
                ["S0", "S1"],
                "{point:?}/{action:?}: snapshot + journal replay must recover both schemas"
            );
            assert_eq!(warm.durability().replayed_records, 1);
        }
    }

    #[test]
    fn failed_dir_sync_after_rename_still_recovers_completely() {
        // DirSync fails *after* the rename: save reports an error, but
        // the published snapshot already contains every record, and the
        // old-generation journal is discarded — nothing lost and
        // nothing doubled.
        let config = CupidConfig::default();
        let th = Thesaurus::with_default_stopwords();
        let tmp = TempRepo::new();
        let marker = tmp.0.parent().unwrap().file_name().unwrap().to_str().unwrap();
        {
            let mut repo = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
            repo.add(&corpus()[0]).unwrap();
            repo.add(&corpus()[1]).unwrap();
            repo.sync_journal().unwrap();
            fault::arm(fault::Fault {
                point: fault::FaultPoint::DirSync,
                path_contains: marker.to_string(),
                skip: 0,
                action: fault::FaultAction::Error,
            });
            assert!(repo.save().is_err());
        }
        fault::disarm(marker);
        let warm = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
        assert_eq!(warm.names(), ["S0", "S1"]);
        assert_eq!(warm.durability().replayed_records, 0, "records came from the snapshot");
    }

    #[test]
    fn journal_append_failure_degrades_loudly_without_losing_memory_state() {
        let config = CupidConfig::default();
        let th = Thesaurus::with_default_stopwords();
        let tmp = TempRepo::new();
        let marker = tmp.0.parent().unwrap().file_name().unwrap().to_str().unwrap();
        let mut repo = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
        fault::arm(fault::Fault {
            point: fault::FaultPoint::JournalAppend,
            path_contains: marker.to_string(),
            skip: 0,
            action: fault::FaultAction::Error,
        });
        repo.add(&corpus()[0]).unwrap();
        assert!(repo.contains("S0"), "the in-memory mutation still commits");
        let d = repo.durability();
        assert!(d.last_fsync_error.unwrap().contains("journal append"));
        // A save re-establishes full durability.
        repo.save().unwrap();
        drop(repo);
        fault::disarm(marker);
        let warm = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
        assert_eq!(warm.names(), ["S0"]);
    }

    #[test]
    fn torn_journal_append_is_truncated_at_reopen() {
        let config = CupidConfig::default();
        let th = Thesaurus::with_default_stopwords();
        let tmp = TempRepo::new();
        let marker = tmp.0.parent().unwrap().file_name().unwrap().to_str().unwrap();
        {
            let mut repo = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
            repo.add(&corpus()[0]).unwrap();
            // The second record tears mid-frame — the classic crash
            // between write and fsync.
            fault::arm(fault::Fault {
                point: fault::FaultPoint::JournalAppend,
                path_contains: marker.to_string(),
                skip: 0,
                action: fault::FaultAction::TornWrite(7),
            });
            repo.add(&corpus()[1]).unwrap();
            assert!(repo.durability().last_fsync_error.is_none(), "a torn write reports success");
        }
        fault::disarm(marker);
        let warm = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
        assert_eq!(warm.names(), ["S0"], "replay stops at the last whole record");
        let d = warm.durability();
        assert_eq!(d.replayed_records, 1);
        assert!(d.replay_discarded.unwrap().contains("truncated after 1 records"));
    }

    #[test]
    fn add_corpus_with_threshold_compaction_survives_reopen() {
        // A compaction threshold small enough to fire mid-batch: the
        // batch must journal all its records before the threshold check
        // runs, or the records after the compaction point would
        // describe mutations already folded into the snapshot and turn
        // every later reopen into silent data loss.
        let tmp = TempRepo::new();
        let config = CupidConfig::default();
        let th = Thesaurus::with_default_stopwords();
        let extra = schema("S4", "Extra", &[("Qty", DataType::Int)]);
        {
            let mut repo = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
            repo.set_compact_after(Some(2));
            repo.add_corpus(&corpus()).unwrap();
            let d = repo.durability();
            assert_eq!(d.compactions, 1, "the batch compacts once, after all appends");
            assert_eq!(d.journal_records, 0, "every batch record folded into the snapshot");
            // Mutations after the batch land in the fresh journal and
            // must stay replayable.
            repo.add(&extra).unwrap();
            repo.sync_journal().unwrap();
        }
        let warm = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
        assert_eq!(warm.names(), ["S0", "S1", "S2", "S3", "S4"]);
        let d = warm.durability();
        assert!(d.replay_discarded.is_none(), "clean replay: {:?}", d.replay_discarded);
        assert_eq!(d.replayed_records, 1);
    }

    #[test]
    fn wrong_config_open_preserves_journal_tail() {
        let tmp = TempRepo::new();
        let config = CupidConfig::default();
        let th = Thesaurus::with_default_stopwords();
        {
            let mut repo = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
            repo.add(&corpus()[0]).unwrap();
            repo.save().unwrap();
            repo.add(&corpus()[1]).unwrap();
            repo.sync_journal().unwrap();
        }
        // An accidental open with a different matcher configuration
        // reports the snapshot stale and replays nothing — and, as long
        // as it never mutates, destroys nothing either.
        let mut other = CupidConfig::default();
        other.th_accept = 0.45;
        {
            let repo = Repository::open_or_create(&tmp.0, &other, &th).unwrap();
            assert!(repo.recovered_stale().is_some());
            assert!(repo.is_empty());
            assert!(repo.durability().replay_discarded.unwrap().contains("fingerprints differ"));
        }
        // The rightful configuration recovers the fsynced tail intact.
        let warm = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
        assert_eq!(warm.names(), ["S0", "S1"]);
        assert_eq!(warm.durability().replayed_records, 1);
    }

    #[test]
    fn non_applying_replay_suffix_is_cut_so_later_appends_replay() {
        let tmp = TempRepo::new();
        let config = CupidConfig::default();
        let th = Thesaurus::with_default_stopwords();
        {
            let mut repo = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
            repo.add(&corpus()[0]).unwrap();
            repo.save().unwrap();
        }
        // Forge a journal whose first record cannot apply (S0 is
        // already in the snapshot) followed by one that could have: the
        // double-journal shape a buggy writer or a partial restore
        // leaves behind.
        let journal_file = journal::journal_path(&tmp.0);
        let header = JournalHeader {
            version: JOURNAL_VERSION,
            config_fp: config.fingerprint(),
            thesaurus_fp: th.fingerprint(),
            snapshot_id: fnv1a(&std::fs::read(&tmp.0).unwrap()),
        };
        {
            let (mut j, _) = Journal::open(&journal_file, header).unwrap();
            j.append(&JournalRecord::Add(corpus()[0].clone())).unwrap();
            j.append(&JournalRecord::Add(corpus()[1].clone())).unwrap();
            j.sync().unwrap();
        }
        let extra = schema("S4", "Extra", &[("Qty", DataType::Int)]);
        {
            let mut repo = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
            assert_eq!(repo.names(), ["S0"], "replay stops at the non-applying record");
            let d = repo.durability();
            assert!(d.replay_discarded.unwrap().contains("replay stopped after 0 records"));
            assert_eq!(d.journal_records, 0, "the dead suffix is cut from the file");
            // Appends after the cut form a replayable sequence instead
            // of sitting forever behind the non-applying record.
            repo.add(&extra).unwrap();
            repo.sync_journal().unwrap();
        }
        let warm = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
        assert_eq!(warm.names(), ["S0", "S4"]);
        let d = warm.durability();
        assert_eq!(d.replayed_records, 1);
        assert!(d.replay_discarded.is_none(), "clean replay: {:?}", d.replay_discarded);
    }

    #[test]
    fn broken_journal_generation_fails_sync_until_save_heals_it() {
        let config = CupidConfig::default();
        let th = Thesaurus::with_default_stopwords();
        let tmp = TempRepo::new();
        let marker = tmp.0.parent().unwrap().file_name().unwrap().to_str().unwrap();
        let mut repo = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
        repo.add(&corpus()[0]).unwrap();
        // Fail both the in-place reset and the from-scratch recreate
        // that save() attempts after publishing the snapshot.
        for _ in 0..2 {
            fault::arm(fault::Fault {
                point: fault::FaultPoint::JournalReset,
                path_contains: marker.to_string(),
                skip: 0,
                action: fault::FaultAction::Error,
            });
        }
        repo.save().unwrap();
        assert!(repo.durability().last_fsync_error.unwrap().contains("recreate"));
        // The journal header still names the old generation: a sync
        // acknowledgment now would be a durability lie, because the
        // next open discards the whole file as a generation mismatch.
        repo.add(&corpus()[1]).unwrap();
        assert!(repo.sync_journal().is_err(), "broken generation must fail sync loudly");
        assert!(repo.durability().last_fsync_error.unwrap().contains("journal generation broken"));
        // A later successful save restores a valid header and full
        // journal durability.
        repo.save().unwrap();
        repo.add(&corpus()[2]).unwrap();
        repo.sync_journal().unwrap();
        drop(repo);
        fault::disarm(marker);
        let warm = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
        assert_eq!(warm.names(), ["S0", "S1", "S2"]);
        assert_eq!(warm.durability().replayed_records, 1, "S2 replays from the healed journal");
    }
}
