//! # cupid-repo — the persistent schema repository (DESIGN.md §8)
//!
//! The paper frames matching as one step of a long-lived
//! data-integration workflow (§9), and PR 3's [`MatchSession`] made the
//! in-process half of that cheap: prepare every schema once, share one
//! token-similarity memo across all pairs. This crate is the half that
//! survives restarts:
//!
//! * **Snapshots** — a [`Repository`] persists the whole session
//!   (token table, similarity memo chunks, every prepared schema, the
//!   source schema graphs) in a versioned, hand-rolled binary format
//!   with a trailing checksum. Config and thesaurus fingerprints are
//!   stored alongside; opening with a different matcher configuration
//!   invalidates the snapshot instead of serving subtly wrong numbers.
//! * **Incremental re-matching** — per-pair [`MatchSummary`] results
//!   are cached keyed by the two schemas' *content hashes*. Editing
//!   one schema of an `N`-schema corpus re-executes only that schema's
//!   `N−1` pairs; everything else is served from the cache,
//!   bit-identical to a cold rebuild.
//! * **Top-k discovery** — an inverted index over interned leaf name
//!   tokens ([`DiscoveryIndex`]) retrieves match candidates by cheap
//!   token overlap, so corpus discovery can execute `N·k` pairs
//!   instead of `N·(N−1)/2`.
//! * **Single-writer locking** — opening a repository takes an
//!   advisory lock file next to the snapshot for the lifetime of the
//!   handle ([`RepoLock`]), so two processes can no longer clobber
//!   each other's saves last-rename-wins; the loser gets a loud
//!   [`RepoError::Locked`] naming the holder's pid.
//!
//! ```
//! use cupid_core::{Cupid, CupidConfig};
//! use cupid_lexical::Thesaurus;
//! use cupid_model::{DataType, ElementKind, SchemaBuilder};
//! use cupid_repo::Repository;
//!
//! let schema = |name: &str, field: &str| {
//!     let mut b = SchemaBuilder::new(name);
//!     let item = b.structured(b.root(), "Item", ElementKind::XmlElement);
//!     b.atomic(item, field, ElementKind::XmlElement, DataType::Int);
//!     b.build().unwrap()
//! };
//!
//! let dir = std::env::temp_dir().join(format!("cupid-repo-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let config = CupidConfig::default();
//! let thesaurus = Thesaurus::with_default_stopwords();
//!
//! // First run: build, match, save. The handle holds the snapshot's
//! // single-writer lock, so it must drop before the warm reopen.
//! let summaries = {
//!     let mut repo = Repository::open_or_create(&dir, &config, &thesaurus).unwrap();
//!     repo.add(&schema("A", "Quantity")).unwrap();
//!     repo.add(&schema("B", "Quantity")).unwrap();
//!     let summaries = repo.match_all_pairs();
//!     assert_eq!(repo.pairs_executed(), 1);
//!     repo.save().unwrap();
//!     summaries
//! };
//!
//! // Second run: everything — including the pair result — comes back
//! // from disk; nothing is re-executed.
//! let mut warm = Repository::open_or_create(&dir, &config, &thesaurus).unwrap();
//! assert_eq!(warm.match_all_pairs(), summaries);
//! assert_eq!(warm.pairs_executed(), 0);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

use cupid_core::{
    Cupid, CupidConfig, LsimTable, MatchSession, MatchSummary, SchemaId, SessionStats,
};
use cupid_lexical::{SimStore, Thesaurus};
use cupid_model::{ModelError, Schema};

mod index;
mod lock;
mod snapshot;

pub use index::{Candidate, DiscoveryIndex};
pub use lock::RepoLock;

/// Default file name used when a repository path points at a directory.
pub const SNAPSHOT_FILE: &str = "cupid.repo";

/// Errors of the repository subsystem.
#[derive(Debug)]
pub enum RepoError {
    /// Reading or writing the snapshot file failed.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying I/O error.
        message: String,
    },
    /// The snapshot bytes are damaged (bad magic, checksum mismatch,
    /// malformed structure). The repository refuses to guess; delete
    /// the file to start over.
    Corrupt {
        /// What failed to decode.
        message: String,
    },
    /// The snapshot is well-formed but was produced by a different
    /// matcher configuration, thesaurus, or container version, so its
    /// persisted similarities are not valid here.
    /// [`Repository::open_or_create`] recovers by starting fresh.
    Stale {
        /// Which fingerprint differed.
        reason: String,
    },
    /// Another live repository handle holds the snapshot's
    /// single-writer lock. Two handles saving the same snapshot would
    /// clobber each other last-rename-wins, so opening is refused
    /// loudly instead (DESIGN.md §9.4).
    Locked {
        /// The lock file that is held.
        path: PathBuf,
        /// The holder's pid, as recorded in the lock file.
        pid: u32,
    },
    /// A schema with this name is already in the repository.
    DuplicateName(String),
    /// No schema with this name is in the repository.
    UnknownName(String),
    /// Preparing a schema failed (e.g. recursive type definitions).
    Model(ModelError),
    /// Exporting a schema to SDL failed (construct not representable).
    Export {
        /// The schema being exported.
        name: String,
        /// Why it is not representable.
        message: String,
    },
    /// Importing an SDL document failed.
    Import(cupid_io::ParseError),
}

impl fmt::Display for RepoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepoError::Io { path, message } => write!(f, "{}: {message}", path.display()),
            RepoError::Corrupt { message } => write!(f, "corrupt snapshot: {message}"),
            RepoError::Stale { reason } => write!(f, "stale snapshot: {reason}"),
            RepoError::Locked { path, pid } => write!(
                f,
                "repository is locked by pid {pid} ({}); a snapshot has exactly one \
                 writer at a time",
                path.display()
            ),
            RepoError::DuplicateName(n) => write!(f, "schema `{n}` already in repository"),
            RepoError::UnknownName(n) => write!(f, "no schema `{n}` in repository"),
            RepoError::Model(e) => write!(f, "schema preparation failed: {e}"),
            RepoError::Export { name, message } => {
                write!(f, "cannot export `{name}` as SDL: {message}")
            }
            RepoError::Import(e) => write!(f, "SDL import failed: {e}"),
        }
    }
}

impl std::error::Error for RepoError {}

impl From<ModelError> for RepoError {
    fn from(e: ModelError) -> Self {
        RepoError::Model(e)
    }
}

/// Aggregate repository counters, for reports and benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepositoryStats {
    /// Schemas in the repository.
    pub schemas: usize,
    /// Pair summaries currently cached (including stale-keyed entries
    /// not yet pruned by [`Repository::save`]).
    pub cached_pairs: usize,
    /// Full pair executions since this handle was opened — the number
    /// the incremental machinery exists to minimize.
    pub pairs_executed: usize,
    /// The underlying session's counters (vocabulary, memo, memory).
    pub session: SessionStats,
}

/// The result of [`Repository::match_pair_shared`]: either served from
/// the persisted cache, or executed over a memo clone and awaiting
/// publication via [`Repository::absorb`].
#[derive(Debug)]
pub enum SharedMatch {
    /// The pair was already cached; nothing to publish.
    Cached(MatchSummary),
    /// The pair executed through the shared read path (a one-entry
    /// batch).
    Executed(SharedBatch),
}

impl SharedMatch {
    /// The match result, wherever it came from.
    pub fn summary(&self) -> &MatchSummary {
        match self {
            SharedMatch::Cached(s) => s,
            SharedMatch::Executed(batch) => batch.summaries().next().expect("one-entry batch"),
        }
    }
}

/// A worklist executed through the shared (`&self`) read path, ready to
/// publish with [`Repository::absorb`]: the summaries, **one** warmed
/// similarity-memo clone shared by the whole worklist, and each pair's
/// content-hash cache key captured at execution time (immune to
/// re-indexing by interleaved mutations). Batching matters: an N-pair
/// discovery request costs one memo clone and one merge, not N.
#[derive(Debug, Clone)]
pub struct SharedBatch {
    entries: Vec<((u64, u64), MatchSummary)>,
    store: SimStore,
}

impl SharedBatch {
    /// The executed summaries, in worklist order.
    pub fn summaries(&self) -> impl Iterator<Item = &MatchSummary> {
        self.entries.iter().map(|(_, s)| s)
    }

    /// Number of pairs executed in this batch.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the batch executed nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A persistent schema repository: a [`MatchSession`] plus source
/// schemas, content hashes, a per-pair summary cache, and an on-disk
/// snapshot location (DESIGN.md §8).
///
/// Schemas are keyed by their schema name ([`Schema::name`]); content
/// hashes track edits, so [`Repository::replace`] with an unchanged
/// schema is free and a real edit invalidates exactly that schema's
/// cached pairs. Nothing touches disk until [`Repository::save`].
#[derive(Debug)]
pub struct Repository<'a> {
    path: PathBuf,
    config: &'a CupidConfig,
    thesaurus: &'a Thesaurus,
    session: MatchSession<'a>,
    names: Vec<String>,
    sources: Vec<Schema>,
    hashes: Vec<u64>,
    /// (source hash, target hash) → summary, as executed.
    pair_cache: BTreeMap<(u64, u64), MatchSummary>,
    pairs_executed: usize,
    dirty: bool,
    loaded: bool,
    recovered_stale: Option<String>,
    /// Held for the whole handle lifetime; released on drop.
    #[allow(dead_code)]
    lock: RepoLock,
}

impl<'a> Repository<'a> {
    /// Open the repository persisted at `path` (a snapshot file, or a
    /// directory in which [`SNAPSHOT_FILE`] is used), or start an empty
    /// one if nothing is persisted yet.
    ///
    /// A snapshot whose config/thesaurus fingerprints (or container
    /// version) do not match is *discarded* and a fresh repository is
    /// returned — the stale reason is kept in
    /// [`Repository::recovered_stale`] for diagnostics. A snapshot that
    /// is damaged (checksum mismatch, malformed bytes) is an error:
    /// silent data loss is worse than a loud one.
    ///
    /// Opening acquires the snapshot's single-writer advisory lock
    /// (`<snapshot>.lock`, holder pid inside) for the lifetime of the
    /// handle; a second open of the same path — from this process or
    /// another — fails with [`RepoError::Locked`] instead of letting
    /// two `save`s clobber each other last-rename-wins. The lock is
    /// released on drop, and a lock left by a crashed process is
    /// reclaimed.
    pub fn open_or_create(
        path: impl AsRef<Path>,
        config: &'a CupidConfig,
        thesaurus: &'a Thesaurus,
    ) -> Result<Self, RepoError> {
        let path = resolve_path(path.as_ref());
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| RepoError::Io {
                    path: parent.to_path_buf(),
                    message: e.to_string(),
                })?;
            }
        }
        let lock = RepoLock::acquire(&path)?;
        let mut repo = Repository {
            path: path.clone(),
            config,
            thesaurus,
            session: MatchSession::new(config, thesaurus),
            names: Vec::new(),
            sources: Vec::new(),
            hashes: Vec::new(),
            pair_cache: BTreeMap::new(),
            pairs_executed: 0,
            dirty: false,
            loaded: false,
            recovered_stale: None,
            lock,
        };
        if !path.exists() {
            return Ok(repo);
        }
        let bytes = std::fs::read(&path)
            .map_err(|e| RepoError::Io { path: path.clone(), message: e.to_string() })?;
        match snapshot::decode(&bytes, config.fingerprint(), thesaurus.fingerprint()) {
            Ok(state) => {
                repo.session = MatchSession::from_parts(
                    config,
                    thesaurus,
                    state.table,
                    state.store,
                    state.prepared,
                );
                repo.names = state.names;
                repo.sources = state.sources;
                repo.hashes = state.hashes;
                repo.pair_cache = state.cache;
                repo.loaded = true;
                Ok(repo)
            }
            Err(RepoError::Stale { reason }) => {
                repo.recovered_stale = Some(reason);
                Ok(repo)
            }
            Err(e) => Err(e),
        }
    }

    /// Set the worker-thread count used for pair execution.
    pub fn threads(mut self, n: usize) -> Self {
        self.session.set_threads(n);
        self
    }

    /// The snapshot file this repository persists to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// True if this handle was populated from an on-disk snapshot.
    pub fn was_loaded(&self) -> bool {
        self.loaded
    }

    /// The reason a stale snapshot was discarded at open, if one was.
    pub fn recovered_stale(&self) -> Option<&str> {
        self.recovered_stale.as_deref()
    }

    /// True if in-memory state has diverged from the snapshot file.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Number of schemas in the repository.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if the repository holds no schemas.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Schema names, in repository order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// True if a schema with this name is present.
    pub fn contains(&self, name: &str) -> bool {
        self.names.iter().any(|n| n == name)
    }

    /// The source schema graph stored under `name`.
    pub fn schema(&self, name: &str) -> Option<&Schema> {
        self.index_of(name).ok().map(|i| &self.sources[i])
    }

    /// Full pair executions since this handle was opened.
    pub fn pairs_executed(&self) -> usize {
        self.pairs_executed
    }

    /// Aggregate counters.
    pub fn stats(&self) -> RepositoryStats {
        RepositoryStats {
            schemas: self.names.len(),
            cached_pairs: self.pair_cache.len(),
            pairs_executed: self.pairs_executed,
            session: self.session.stats(),
        }
    }

    fn index_of(&self, name: &str) -> Result<usize, RepoError> {
        self.names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| RepoError::UnknownName(name.to_string()))
    }

    /// Add a schema, keyed by its schema name.
    pub fn add(&mut self, schema: &Schema) -> Result<(), RepoError> {
        if self.contains(schema.name()) {
            return Err(RepoError::DuplicateName(schema.name().to_string()));
        }
        self.session.add(schema)?;
        self.names.push(schema.name().to_string());
        self.sources.push(schema.clone());
        self.hashes.push(schema.content_hash());
        self.dirty = true;
        Ok(())
    }

    /// Add a whole corpus. All-or-nothing like
    /// [`MatchSession::add_corpus`]: name collisions (against the
    /// repository or within the batch) and preparation errors are
    /// reported before anything is added.
    pub fn add_corpus(&mut self, schemas: &[Schema]) -> Result<(), RepoError> {
        let mut batch: BTreeSet<&str> = BTreeSet::new();
        for s in schemas {
            if self.contains(s.name()) || !batch.insert(s.name()) {
                return Err(RepoError::DuplicateName(s.name().to_string()));
            }
        }
        self.session.add_corpus(schemas)?;
        for s in schemas {
            self.names.push(s.name().to_string());
            self.sources.push(s.clone());
            self.hashes.push(s.content_hash());
        }
        self.dirty = true;
        Ok(())
    }

    /// Replace the stored schema with the same name. A no-op when the
    /// content hash is unchanged (the pair cache stays fully valid);
    /// otherwise the schema is re-prepared and its cached pairs become
    /// unreachable, so the next match re-executes exactly this
    /// schema's pairs.
    pub fn replace(&mut self, schema: &Schema) -> Result<(), RepoError> {
        let i = self.index_of(schema.name())?;
        let hash = schema.content_hash();
        if hash == self.hashes[i] {
            return Ok(());
        }
        self.session.replace(SchemaId::from_index(i), schema)?;
        self.sources[i] = schema.clone();
        self.hashes[i] = hash;
        self.dirty = true;
        Ok(())
    }

    /// Remove (and return) the schema stored under `name`.
    pub fn remove(&mut self, name: &str) -> Result<Schema, RepoError> {
        let i = self.index_of(name)?;
        self.session.remove(SchemaId::from_index(i));
        self.names.remove(i);
        self.hashes.remove(i);
        self.dirty = true;
        Ok(self.sources.remove(i))
    }

    /// Execute the uncached subset of a worklist and fill the cache.
    fn execute_missing(&mut self, pairs: &[(usize, usize)]) {
        let mut need: BTreeSet<(u64, u64)> = BTreeSet::new();
        let mut worklist: Vec<(SchemaId, SchemaId)> = Vec::new();
        for &(i, j) in pairs {
            let key = (self.hashes[i], self.hashes[j]);
            if !self.pair_cache.contains_key(&key) && need.insert(key) {
                worklist.push((SchemaId::from_index(i), SchemaId::from_index(j)));
            }
        }
        if worklist.is_empty() {
            return;
        }
        let summaries = self.session.match_pairs(&worklist);
        self.pairs_executed += worklist.len();
        self.dirty = true;
        for s in summaries {
            let key = (self.hashes[s.source.index()], self.hashes[s.target.index()]);
            self.pair_cache.insert(key, s);
        }
    }

    /// A cached summary re-anchored to the current indices `(i, j)`.
    /// Valid because everything in a summary except the two ids is a
    /// pure function of the schemas' *content* (plus config and
    /// thesaurus, which are fingerprint-pinned).
    fn serve(&self, i: usize, j: usize) -> MatchSummary {
        let key = (self.hashes[i], self.hashes[j]);
        let mut s = self.pair_cache.get(&key).expect("pair executed or cached").clone();
        s.source = SchemaId::from_index(i);
        s.target = SchemaId::from_index(j);
        s
    }

    /// Match every unordered schema pair, serving cached pairs from the
    /// persisted summary cache and executing only the rest. Summaries
    /// come back in lexicographic `(i, j)` order, `i < j`, exactly like
    /// [`MatchSession::match_all_pairs`] — and bit-identical to it.
    pub fn match_all_pairs(&mut self) -> Vec<MatchSummary> {
        let n = self.names.len();
        let mut pairs = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                pairs.push((i, j));
            }
        }
        self.execute_missing(&pairs);
        pairs.into_iter().map(|(i, j)| self.serve(i, j)).collect()
    }

    /// Match one named pair (cached or executed).
    pub fn match_pair(&mut self, source: &str, target: &str) -> Result<MatchSummary, RepoError> {
        let i = self.index_of(source)?;
        let j = self.index_of(target)?;
        self.execute_missing(&[(i, j)]);
        Ok(self.serve(i, j))
    }

    /// The cached summary of a named pair, through a shared (`&self`)
    /// handle — the pure read path of the daemon's read/write split
    /// (DESIGN.md §9). `None` if the pair has not been executed under
    /// the current content hashes.
    pub fn cached_pair(
        &self,
        source: &str,
        target: &str,
    ) -> Result<Option<MatchSummary>, RepoError> {
        let i = self.index_of(source)?;
        let j = self.index_of(target)?;
        Ok(self.cached_pair_at(i, j))
    }

    /// [`Repository::cached_pair`] by repository indices (the discovery
    /// index speaks indices). Panics if an index is out of bounds.
    pub fn cached_pair_at(&self, i: usize, j: usize) -> Option<MatchSummary> {
        let key = (self.hashes[i], self.hashes[j]);
        self.pair_cache.get(&key).map(|s| {
            let mut s = s.clone();
            s.source = SchemaId::from_index(i);
            s.target = SchemaId::from_index(j);
            s
        })
    }

    /// Match one named pair through a shared (`&self`) handle. A cached
    /// pair is served directly ([`SharedMatch::Cached`]); an uncached
    /// pair executes over a clone of the warm session memo
    /// ([`MatchSession::match_pair_shared`]) and comes back as a
    /// [`SharedMatch::Executed`] one-entry batch carrying the warmed
    /// memo clone and the pair's content-hash cache key, for the
    /// caller to publish via [`Repository::absorb`] under exclusive
    /// access. Summaries are bit-identical to
    /// [`Repository::match_pair`] either way.
    pub fn match_pair_shared(&self, source: &str, target: &str) -> Result<SharedMatch, RepoError> {
        let i = self.index_of(source)?;
        let j = self.index_of(target)?;
        match self.cached_pair_at(i, j) {
            Some(s) => Ok(SharedMatch::Cached(s)),
            None => Ok(SharedMatch::Executed(self.execute_pairs_shared(&[(i, j)]))),
        }
    }

    /// Execute a worklist of pairs (by repository indices) over **one**
    /// clone of the warm session memo, without mutating the repository
    /// ([`MatchSession::match_pairs_shared`]). The returned
    /// [`SharedBatch`] records each pair's content-hash cache key *as
    /// of this call*, so publishing it later through
    /// [`Repository::absorb`] stays correct even if an interleaved
    /// mutation re-indexed or replaced schemas in between. Panics if an
    /// index is out of bounds.
    pub fn execute_pairs_shared(&self, pairs: &[(usize, usize)]) -> SharedBatch {
        let worklist: Vec<(SchemaId, SchemaId)> = pairs
            .iter()
            .map(|&(i, j)| (SchemaId::from_index(i), SchemaId::from_index(j)))
            .collect();
        let (summaries, store) = self.session.match_pairs_shared(&worklist);
        let entries = pairs
            .iter()
            .zip(summaries)
            .map(|(&(i, j), s)| ((self.hashes[i], self.hashes[j]), s))
            .collect();
        SharedBatch { entries, store }
    }

    /// Absorb a batch from the shared path: insert each summary into
    /// the pair cache under the content-hash key captured at execution
    /// time, and merge the warmed store clone back into the session
    /// memo. The write half of the read/write split — call it under
    /// exclusive access. Absorbing the same pair twice is harmless (the
    /// summary is a pure function of schema content, so the insert
    /// overwrites an identical value), and an execution whose schemas
    /// were meanwhile replaced or removed parks under a dead key that
    /// the next [`Repository::save`] prunes.
    pub fn absorb(&mut self, batch: SharedBatch) {
        if batch.entries.is_empty() {
            return;
        }
        let executed = batch.entries.len();
        for (key, summary) in batch.entries {
            self.pair_cache.insert(key, summary);
        }
        self.session.absorb(batch.store, executed);
        self.pairs_executed += executed;
        self.dirty = true;
    }

    /// Index-assisted discovery (DESIGN.md §8.4): build the
    /// [`DiscoveryIndex`], take each schema's top-`k` candidates by
    /// leaf-token overlap, and execute only that pruned worklist.
    /// Returns the executed pairs' summaries in `(i, j)` order; rank
    /// them by [`MatchSummary::best_wsim`] for a discovery listing.
    /// The recall/pruning trade-off is measured by the eval harness's
    /// `retrieval` experiment.
    pub fn top_k_pairs(&mut self, k: usize) -> Vec<MatchSummary> {
        let pairs = self.discovery_index().top_k_pairs(k);
        self.execute_missing(&pairs);
        pairs.into_iter().map(|(i, j)| self.serve(i, j)).collect()
    }

    /// Build the discovery index over the current corpus. Positions
    /// match [`Repository::names`] order.
    pub fn discovery_index(&self) -> DiscoveryIndex {
        DiscoveryIndex::build(self.session.prepared())
    }

    /// The linguistic similarity table of a named pair, computed
    /// through the session memo (diagnostics and the bit-identity test
    /// suite).
    pub fn lsim_of(&mut self, source: &str, target: &str) -> Result<LsimTable, RepoError> {
        let i = self.index_of(source)?;
        let j = self.index_of(target)?;
        Ok(self.session.lsim_of(SchemaId::from_index(i), SchemaId::from_index(j)))
    }

    /// Persist the repository to its snapshot file (write-temp +
    /// atomic rename). Cache entries keyed by hashes no longer in the
    /// corpus (from [`Repository::replace`]/[`Repository::remove`]) are
    /// pruned first, so snapshots do not grow monotonically.
    pub fn save(&mut self) -> Result<(), RepoError> {
        let live: BTreeSet<u64> = self.hashes.iter().copied().collect();
        self.pair_cache.retain(|(a, b), _| live.contains(a) && live.contains(b));
        let refs = snapshot::SnapshotRefs {
            names: &self.names,
            hashes: &self.hashes,
            sources: &self.sources,
            prepared: self.session.prepared(),
            table: self.session.table(),
            store: self.session.store(),
            cache: &self.pair_cache,
        };
        let bytes =
            snapshot::encode(&refs, self.config.fingerprint(), self.thesaurus.fingerprint());
        let tmp = self.path.with_extension("tmp");
        let io_err = |path: &Path, e: std::io::Error| RepoError::Io {
            path: path.to_path_buf(),
            message: e.to_string(),
        };
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| io_err(parent, e))?;
            }
        }
        std::fs::write(&tmp, &bytes).map_err(|e| io_err(&tmp, e))?;
        std::fs::rename(&tmp, &self.path).map_err(|e| io_err(&self.path, e))?;
        self.dirty = false;
        Ok(())
    }

    /// Export the schema stored under `name` as an SDL document — the
    /// reproduction's native text format — for review, diffing, or
    /// re-import into another repository.
    pub fn export_sdl(&self, name: &str) -> Result<String, RepoError> {
        let i = self.index_of(name)?;
        cupid_io::sdl::write_sdl(&self.sources[i])
            .map_err(|e| RepoError::Export { name: name.to_string(), message: e.to_string() })
    }

    /// Parse an SDL document and add it, returning the schema's name.
    pub fn import_sdl(&mut self, text: &str) -> Result<String, RepoError> {
        let schema = cupid_io::parse_sdl(text).map_err(RepoError::Import)?;
        let name = schema.name().to_string();
        self.add(&schema)?;
        Ok(name)
    }
}

/// Resolve a user-supplied path: directories get the default snapshot
/// file name appended.
fn resolve_path(path: &Path) -> PathBuf {
    if path.is_dir() {
        path.join(SNAPSHOT_FILE)
    } else {
        path.to_path_buf()
    }
}

/// Extension trait putting `repository()` on the [`Cupid`] facade —
/// the open-or-create entry point of the persistence subsystem.
///
/// A separate trait (rather than an inherent method) because `Cupid`
/// lives in `cupid-core`, which this crate builds on top of.
pub trait CupidRepositoryExt {
    /// Open (or create) the repository persisted at `path`, bound to
    /// this matcher's configuration and thesaurus.
    fn repository<P: AsRef<Path>>(&self, path: P) -> Result<Repository<'_>, RepoError>;
}

impl CupidRepositoryExt for Cupid {
    fn repository<P: AsRef<Path>>(&self, path: P) -> Result<Repository<'_>, RepoError> {
        Repository::open_or_create(path, self.config(), self.thesaurus())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cupid_model::{DataType, ElementKind, SchemaBuilder};
    use std::sync::atomic::{AtomicU32, Ordering};

    /// A unique, self-cleaning snapshot location per test.
    struct TempRepo(PathBuf);

    impl TempRepo {
        fn new() -> Self {
            static SEQ: AtomicU32 = AtomicU32::new(0);
            let dir = std::env::temp_dir().join(format!(
                "cupid-repo-test-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir).unwrap();
            TempRepo(dir.join(SNAPSHOT_FILE))
        }
    }

    impl Drop for TempRepo {
        fn drop(&mut self) {
            if let Some(dir) = self.0.parent() {
                std::fs::remove_dir_all(dir).ok();
            }
        }
    }

    fn schema(name: &str, container: &str, fields: &[(&str, DataType)]) -> Schema {
        let mut b = SchemaBuilder::new(name);
        let c = b.structured(b.root(), container, ElementKind::XmlElement);
        for (f, dt) in fields {
            b.atomic(c, *f, ElementKind::XmlElement, *dt);
        }
        b.build().unwrap()
    }

    fn corpus() -> Vec<Schema> {
        vec![
            schema("S0", "Item", &[("Qty", DataType::Int), ("Invoice", DataType::String)]),
            schema("S1", "Item", &[("Quantity", DataType::Int), ("Bill", DataType::String)]),
            schema("S2", "Order", &[("Quantity", DataType::Int)]),
            schema("S3", "Thing", &[("Unrelated", DataType::Date)]),
        ]
    }

    #[test]
    fn save_load_serves_everything_from_cache() {
        let tmp = TempRepo::new();
        let config = CupidConfig::default();
        let th = Thesaurus::with_default_stopwords();
        let want;
        {
            let mut repo = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
            assert!(!repo.was_loaded());
            repo.add_corpus(&corpus()).unwrap();
            want = repo.match_all_pairs();
            assert_eq!(repo.pairs_executed(), 6);
            repo.save().unwrap();
            assert!(!repo.is_dirty());
        }
        let mut warm = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
        assert!(warm.was_loaded());
        assert_eq!(warm.names(), ["S0", "S1", "S2", "S3"]);
        let got = warm.match_all_pairs();
        assert_eq!(got, want, "loaded repository must serve bit-identical summaries");
        assert_eq!(warm.pairs_executed(), 0, "everything served from the persisted cache");
    }

    #[test]
    fn replace_reexecutes_only_that_schemas_pairs() {
        let tmp = TempRepo::new();
        let config = CupidConfig::default();
        let th = Thesaurus::with_default_stopwords();
        let mut repo = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
        repo.add_corpus(&corpus()).unwrap();
        repo.match_all_pairs();
        assert_eq!(repo.pairs_executed(), 6);
        // Unchanged replace: free.
        repo.replace(&corpus()[1]).unwrap();
        repo.match_all_pairs();
        assert_eq!(repo.pairs_executed(), 6);
        // Real edit: exactly S1's 3 pairs re-execute.
        let edited =
            schema("S1", "Item", &[("Quantity", DataType::Int), ("Total", DataType::Money)]);
        repo.replace(&edited).unwrap();
        let summaries = repo.match_all_pairs();
        assert_eq!(repo.pairs_executed(), 9, "only the edited schema's 3 pairs run again");
        // And the result equals a cold rebuild, bit for bit.
        let tmp2 = TempRepo::new();
        let mut cold = Repository::open_or_create(&tmp2.0, &config, &th).unwrap();
        let mut fresh = corpus();
        fresh[1] = edited;
        cold.add_corpus(&fresh).unwrap();
        assert_eq!(cold.match_all_pairs(), summaries);
    }

    #[test]
    fn remove_and_reindex() {
        let tmp = TempRepo::new();
        let config = CupidConfig::default();
        let th = Thesaurus::with_default_stopwords();
        let mut repo = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
        repo.add_corpus(&corpus()).unwrap();
        repo.match_all_pairs();
        let removed = repo.remove("S1").unwrap();
        assert_eq!(removed.name(), "S1");
        assert!(!repo.contains("S1"));
        assert_eq!(repo.len(), 3);
        let executed = repo.pairs_executed();
        let summaries = repo.match_all_pairs();
        assert_eq!(summaries.len(), 3);
        assert_eq!(repo.pairs_executed(), executed, "surviving pairs come from cache");
        assert_eq!(summaries[0].source.index(), 0);
        assert_eq!(summaries[0].target.index(), 1, "ids re-anchored after the shift");
        assert!(repo.remove("S1").is_err());
    }

    #[test]
    fn stale_config_discards_snapshot() {
        let tmp = TempRepo::new();
        let th = Thesaurus::with_default_stopwords();
        let config = CupidConfig::default();
        {
            let mut repo = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
            repo.add_corpus(&corpus()).unwrap();
            repo.match_all_pairs();
            repo.save().unwrap();
        }
        let mut other = CupidConfig::default();
        other.th_accept = 0.45;
        let repo = Repository::open_or_create(&tmp.0, &other, &th).unwrap();
        assert!(!repo.was_loaded());
        assert!(repo.recovered_stale().unwrap().contains("config fingerprint"));
        assert!(repo.is_empty());
        drop(repo); // release the single-writer lock before reopening
                    // Different thesaurus: also stale.
        let th2 = Thesaurus::empty();
        let repo = Repository::open_or_create(&tmp.0, &config, &th2).unwrap();
        assert!(repo.recovered_stale().unwrap().contains("thesaurus fingerprint"));
    }

    #[test]
    fn corrupt_snapshot_is_a_loud_error() {
        let tmp = TempRepo::new();
        let th = Thesaurus::with_default_stopwords();
        let config = CupidConfig::default();
        {
            let mut repo = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
            repo.add(&corpus()[0]).unwrap();
            repo.save().unwrap();
        }
        let mut bytes = std::fs::read(&tmp.0).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&tmp.0, &bytes).unwrap();
        match Repository::open_or_create(&tmp.0, &config, &th) {
            Err(RepoError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_and_unknown_names() {
        let tmp = TempRepo::new();
        let th = Thesaurus::with_default_stopwords();
        let config = CupidConfig::default();
        let mut repo = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
        repo.add(&corpus()[0]).unwrap();
        assert!(matches!(repo.add(&corpus()[0]), Err(RepoError::DuplicateName(_))));
        assert!(matches!(repo.match_pair("S0", "Nope"), Err(RepoError::UnknownName(_))));
        assert!(repo.schema("S0").is_some());
        assert!(repo.schema("Nope").is_none());
        // batch-internal duplicate
        let batch = vec![corpus()[1].clone(), corpus()[1].clone()];
        assert!(matches!(repo.add_corpus(&batch), Err(RepoError::DuplicateName(_))));
        assert_eq!(repo.len(), 1, "failed batch adds nothing");
    }

    #[test]
    fn facade_extension_opens_repositories() {
        let tmp = TempRepo::new();
        let cupid = Cupid::new(Thesaurus::with_default_stopwords());
        let mut repo = cupid.repository(&tmp.0).unwrap();
        repo.add(&corpus()[0]).unwrap();
        repo.add(&corpus()[1]).unwrap();
        let s = repo.match_pair("S0", "S1").unwrap();
        assert!(s.has_leaf_mapping("S0.Item.Qty", "S1.Item.Quantity") || s.total_pairs > 0);
        repo.save().unwrap();
        assert!(tmp.0.exists());
    }

    #[test]
    fn concurrent_open_is_refused_until_drop() {
        let tmp = TempRepo::new();
        let config = CupidConfig::default();
        let th = Thesaurus::with_default_stopwords();
        let repo = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
        match Repository::open_or_create(&tmp.0, &config, &th) {
            Err(RepoError::Locked { pid, .. }) => assert_eq!(pid, std::process::id()),
            other => panic!("expected Locked, got {other:?}"),
        }
        drop(repo);
        // Lock released with the handle: the reopen succeeds.
        let again = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
        assert!(!again.was_loaded());
    }

    #[test]
    fn shared_reads_and_absorb_agree_with_exclusive_path() {
        let tmp = TempRepo::new();
        let config = CupidConfig::default();
        let th = Thesaurus::with_default_stopwords();
        let mut repo = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
        repo.add_corpus(&corpus()).unwrap();
        // Uncached: the shared path executes over a memo clone...
        let batch = match repo.match_pair_shared("S0", "S1").unwrap() {
            SharedMatch::Executed(batch) => batch,
            other => panic!("uncached pair must execute, got {other:?}"),
        };
        assert_eq!(batch.len(), 1);
        let shared = batch.summaries().next().unwrap().clone();
        assert_eq!(repo.pairs_executed(), 0, "shared execution is not yet absorbed");
        assert!(repo.cached_pair("S0", "S1").unwrap().is_none());
        // ...absorbing publishes it...
        repo.absorb(batch);
        assert_eq!(repo.pairs_executed(), 1);
        assert_eq!(repo.cached_pair("S0", "S1").unwrap().as_ref(), Some(&shared));
        // ...and the exclusive path serves the identical summary.
        assert_eq!(repo.match_pair("S0", "S1").unwrap(), shared);
        // A cached pair serves directly through the shared path too.
        match repo.match_pair_shared("S0", "S1").unwrap() {
            SharedMatch::Cached(s) => assert_eq!(s, shared),
            other => panic!("cached pair must serve from cache, got {other:?}"),
        }
        // A whole worklist executes over one memo clone, and an
        // execution published after its schema was replaced parks
        // under the old (now dead) key instead of corrupting the cache.
        let stale = repo.execute_pairs_shared(&[(2, 3), (1, 2)]);
        assert_eq!(stale.len(), 2);
        let edited = schema("S2", "Order", &[("Qty", DataType::Int)]);
        repo.replace(&edited).unwrap();
        repo.absorb(stale);
        assert!(
            repo.cached_pair("S2", "S3").unwrap().is_none(),
            "stale execution must not serve for the replaced schema"
        );
    }

    #[test]
    fn top_k_executes_fewer_pairs_than_all_pairs() {
        let tmp = TempRepo::new();
        let th = Thesaurus::with_default_stopwords();
        let config = CupidConfig::default();
        let mut repo = Repository::open_or_create(&tmp.0, &config, &th).unwrap();
        // Two clear domains with zero cross-domain token overlap.
        repo.add_corpus(&[
            schema("C1", "Customer", &[("CustomerName", DataType::String)]),
            schema("C2", "Customer", &[("CustomerName", DataType::String)]),
            schema("O1", "Order", &[("OrderDate", DataType::Date)]),
            schema("O2", "Order", &[("OrderDate", DataType::Date)]),
        ])
        .unwrap();
        let pruned = repo.top_k_pairs(1);
        assert!(repo.pairs_executed() < 6, "pruned discovery beats the 6-pair full worklist");
        let best: Vec<(usize, usize)> = pruned
            .iter()
            .filter(|s| s.best_wsim() > 0.5)
            .map(|s| (s.source.index(), s.target.index()))
            .collect();
        assert!(best.contains(&(0, 1)), "C1~C2 retrieved");
        assert!(best.contains(&(2, 3)), "O1~O2 retrieved");
    }
}
