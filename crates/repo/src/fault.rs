//! The injectable-failure I/O seam of the durability layer
//! (DESIGN.md §10.5).
//!
//! Crash-safety claims are only as good as the failure modes they were
//! tested against, and real filesystem failures — a full disk, a torn
//! page, a write that persisted only a prefix before power loss — are
//! not reproducible by killing processes alone. Every write, fsync and
//! rename on the journal and snapshot paths therefore routes through
//! this module, where a test can *arm* a deterministic fault:
//!
//! * [`FaultAction::Error`] — the operation fails without touching the
//!   file (permission loss, full disk at `open`).
//! * [`FaultAction::ShortWrite`] — only a prefix of the bytes is
//!   written and the operation *reports failure* (classic `write(2)`
//!   short write surfaced as an error).
//! * [`FaultAction::TornWrite`] — only a prefix is written but the
//!   operation *reports success*: the caller continues as if the bytes
//!   were durable, exactly what a crash between page cache and platter
//!   looks like after reboot.
//!
//! Faults are one-shot, keyed by a [`FaultPoint`] and a path substring
//! (so parallel tests armed against different temp directories cannot
//! interfere), with an optional skip count to hit the n-th matching
//! operation. When nothing is armed — the production state — the seam
//! is a relaxed atomic load and a direct syscall.
//!
//! This module is compiled unconditionally (not `#[cfg(test)]`): the
//! workspace's integration suites and the fault-matrix unit tests both
//! arm faults from outside this crate.

use std::fs::File;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Where in the durability path a fault can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// Appending a record frame to the journal file.
    JournalAppend,
    /// Fsyncing the journal file.
    JournalSync,
    /// Truncating + re-heading the journal after a snapshot save.
    JournalReset,
    /// Writing the snapshot bytes to the temp file.
    SnapshotWrite,
    /// Fsyncing the snapshot temp file before the rename.
    SnapshotSync,
    /// Renaming the temp file over the snapshot.
    SnapshotRename,
    /// Fsyncing the parent directory after the rename.
    DirSync,
}

/// What the armed fault does at its point (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail without writing anything.
    Error,
    /// Write only the first `n` bytes, then report failure.
    ShortWrite(usize),
    /// Write only the first `n` bytes, but report success — the
    /// caller's next fsync or reopen discovers the damage, not this
    /// call.
    TornWrite(usize),
}

/// An armed, one-shot fault.
#[derive(Debug, Clone)]
pub struct Fault {
    /// The operation it intercepts.
    pub point: FaultPoint,
    /// Only operations on paths containing this substring match —
    /// tests arm against their own temp directory so parallel tests
    /// never trip each other's faults.
    pub path_contains: String,
    /// Number of matching operations to let through before firing.
    pub skip: u32,
    /// What happens when it fires.
    pub action: FaultAction,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static PLAN: Mutex<Vec<Fault>> = Mutex::new(Vec::new());

/// Arm a fault. It fires once on the first matching operation past its
/// skip count, then disarms itself.
pub fn arm(fault: Fault) {
    let mut plan = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    plan.push(fault);
    ARMED.store(true, Ordering::Release);
}

/// Disarm every fault whose path filter contains `path_contains`
/// (tests clear their own temp directory's faults on the way out
/// without touching a parallel test's plan).
pub fn disarm(path_contains: &str) {
    let mut plan = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    plan.retain(|f| !f.path_contains.contains(path_contains));
    ARMED.store(!plan.is_empty(), Ordering::Release);
}

/// Consume the first armed fault matching `(point, path)`, if any.
fn take(point: FaultPoint, path: &Path) -> Option<FaultAction> {
    if !ARMED.load(Ordering::Acquire) {
        return None;
    }
    let text = path.to_string_lossy();
    let mut plan = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    let hit = plan.iter().position(|f| f.point == point && text.contains(&f.path_contains))?;
    if plan[hit].skip > 0 {
        plan[hit].skip -= 1;
        return None;
    }
    let fault = plan.remove(hit);
    ARMED.store(!plan.is_empty(), Ordering::Release);
    Some(fault.action)
}

fn injected(what: &str) -> std::io::Error {
    std::io::Error::other(format!("injected fault: {what}"))
}

/// `write_all` through the seam.
pub(crate) fn write_all(
    point: FaultPoint,
    path: &Path,
    file: &mut File,
    bytes: &[u8],
) -> std::io::Result<()> {
    match take(point, path) {
        None => file.write_all(bytes),
        Some(FaultAction::Error) => Err(injected("write refused")),
        Some(FaultAction::ShortWrite(n)) => {
            file.write_all(&bytes[..n.min(bytes.len())])?;
            Err(injected("short write"))
        }
        Some(FaultAction::TornWrite(n)) => file.write_all(&bytes[..n.min(bytes.len())]),
    }
}

/// `sync_all` through the seam. A torn or short "sync" makes no sense
/// byte-wise, so every armed action maps to a failed fsync.
pub(crate) fn sync(point: FaultPoint, path: &Path, file: &File) -> std::io::Result<()> {
    match take(point, path) {
        None => file.sync_all(),
        Some(_) => Err(injected("fsync refused")),
    }
}

/// `rename` through the seam (armed against the *destination* path).
pub(crate) fn rename(from: &Path, to: &Path) -> std::io::Result<()> {
    match take(FaultPoint::SnapshotRename, to) {
        None => std::fs::rename(from, to),
        Some(_) => Err(injected("rename refused")),
    }
}

/// Fsync the directory containing `path`, so a just-renamed file's
/// directory entry is durable (DESIGN.md §10.2). A path with no named
/// parent (cwd-relative file) syncs nothing — the workspace always
/// persists under explicit directories.
pub(crate) fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) else {
        return Ok(());
    };
    if let Some(action) = take(FaultPoint::DirSync, path) {
        let _ = action;
        return Err(injected("directory fsync refused"));
    }
    // Opening a directory read-only for fsync is how durable renames
    // work on Linux; platforms where directories cannot be opened
    // (Windows) get rename durability from the OS instead, so a failed
    // *open* is not an error — a failed *fsync* on an opened dir is.
    match File::open(parent) {
        Ok(dir) => dir.sync_all(),
        Err(_) => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read as _;

    #[test]
    fn unarmed_seam_is_passthrough_and_faults_are_one_shot() {
        let dir = std::env::temp_dir().join(format!("cupid-fault-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seam.bin");
        let mut f = File::create(&path).unwrap();
        write_all(FaultPoint::JournalAppend, &path, &mut f, b"abcdef").unwrap();
        sync(FaultPoint::JournalSync, &path, &f).unwrap();

        // Torn write: 2 bytes land, success reported.
        arm(Fault {
            point: FaultPoint::JournalAppend,
            path_contains: "seam.bin".into(),
            skip: 0,
            action: FaultAction::TornWrite(2),
        });
        write_all(FaultPoint::JournalAppend, &path, &mut f, b"ghijkl").unwrap();
        // One-shot: the next write goes through whole.
        write_all(FaultPoint::JournalAppend, &path, &mut f, b"mn").unwrap();
        drop(f);
        let mut got = String::new();
        File::open(&path).unwrap().read_to_string(&mut got).unwrap();
        assert_eq!(got, "abcdefghmn");

        // Short write: 1 byte lands, failure reported. Skip counts let
        // a later operation be targeted.
        let mut f = File::options().append(true).open(&path).unwrap();
        arm(Fault {
            point: FaultPoint::JournalAppend,
            path_contains: "seam.bin".into(),
            skip: 1,
            action: FaultAction::ShortWrite(1),
        });
        write_all(FaultPoint::JournalAppend, &path, &mut f, b"..").unwrap();
        assert!(write_all(FaultPoint::JournalAppend, &path, &mut f, b"XY").is_err());
        // A different path does not trip a path-filtered fault.
        arm(Fault {
            point: FaultPoint::JournalSync,
            path_contains: "some-other-dir".into(),
            skip: 0,
            action: FaultAction::Error,
        });
        sync(FaultPoint::JournalSync, &path, &f).unwrap();
        disarm("some-other-dir");
        std::fs::remove_dir_all(&dir).ok();
    }
}
