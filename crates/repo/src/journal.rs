//! The write-ahead mutation journal (DESIGN.md §10).
//!
//! A snapshot rewrite costs the whole corpus; a mutation costs one
//! schema. The journal closes that gap: every
//! add/replace/remove appends one checksummed frame (the
//! [`cupid_model::wire`] container, kinds `JOURNAL_*`) to a sibling
//! `<snapshot>.journal` file, and `Repository::open_or_create` replays
//! the tail on top of the snapshot. An fsynced append is a durability
//! point — a crash loses at most the un-synced suffix, never an
//! acknowledged mutation.
//!
//! The file layout is one header frame followed by zero or more
//! mutation record frames:
//!
//! ```text
//! JOURNAL_HEADER   version, config_fp, thesaurus_fp, snapshot_id
//! JOURNAL_ADD      Schema wire bytes
//! JOURNAL_REPLACE  Schema wire bytes
//! JOURNAL_REMOVE   schema name
//! ...
//! ```
//!
//! `snapshot_id` is the FNV-1a hash of the snapshot file the journal
//! extends (0 for "no snapshot"), which is what makes the
//! snapshot+journal pair crash-consistent *without* any cross-file
//! transaction: `Repository::save` first publishes the new snapshot
//! (atomic rename), then resets the journal with the new id. A crash
//! between the two leaves a journal whose header names the *old*
//! snapshot — the mismatch is detected at open and the journal is
//! discarded, which is correct because every record in it was just
//! folded into the snapshot that did get renamed into place.
//!
//! Replay is strict about damage but forgiving about where it stops:
//! a record tail that fails its frame checksum, truncates mid-frame,
//! or decodes to garbage ends replay *at the last valid record*, and
//! the file is truncated back to that point ([`Journal::open`]). A
//! header that fails to validate — or that names a different matcher
//! configuration or container version — replays nothing, but the file
//! is preserved on disk until this handle's first write: only records
//! provably folded into a published snapshot (the generation-mismatch
//! case above) are destroyed at open. Either way the reason is
//! surfaced through `DurabilityStats`, never silently swallowed.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom};
use std::path::{Path, PathBuf};

use cupid_model::wire::{
    read_frame, write_frame, WireReader, WireWriter, JOURNAL_ADD, JOURNAL_HEADER, JOURNAL_REMOVE,
    JOURNAL_REPLACE,
};
use cupid_model::Schema;

use crate::fault::{self, FaultPoint};

/// Version of the journal container format; bumped on incompatible
/// layout changes, at which point old journals are discarded at open
/// (their snapshot is still authoritative).
pub const JOURNAL_VERSION: u32 = 1;

/// The journal file that extends the snapshot at `snapshot`: the same
/// file name with `.journal` appended (`cupid.repo` →
/// `cupid.repo.journal`), so snapshot, lock, and journal sit side by
/// side in one directory.
pub fn journal_path(snapshot: &Path) -> PathBuf {
    let mut name = snapshot.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".journal");
    snapshot.with_file_name(name)
}

/// The journal's first frame: which snapshot (and which matcher
/// configuration) its records extend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalHeader {
    /// [`JOURNAL_VERSION`] at write time.
    pub version: u32,
    /// The matcher configuration fingerprint the records were produced
    /// under (mirrors the snapshot's own field).
    pub config_fp: u64,
    /// The thesaurus fingerprint, likewise.
    pub thesaurus_fp: u64,
    /// FNV-1a of the snapshot file's bytes at the time the journal was
    /// started, or 0 when no snapshot existed yet. A mismatch at open
    /// means the journal belongs to a different snapshot generation
    /// and must be discarded.
    pub snapshot_id: u64,
}

impl JournalHeader {
    /// Encode the header frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.put_u32(self.version);
        w.put_u64(self.config_fp);
        w.put_u64(self.thesaurus_fp);
        w.put_u64(self.snapshot_id);
        w.into_bytes()
    }

    /// Decode a header frame payload written by [`JournalHeader::encode`].
    pub fn decode(payload: &[u8]) -> Result<JournalHeader, String> {
        let mut r = WireReader::new(payload);
        let header = JournalHeader {
            version: r.get_u32().map_err(|e| e.to_string())?,
            config_fp: r.get_u64().map_err(|e| e.to_string())?,
            thesaurus_fp: r.get_u64().map_err(|e| e.to_string())?,
            snapshot_id: r.get_u64().map_err(|e| e.to_string())?,
        };
        r.finish().map_err(|e| e.to_string())?;
        Ok(header)
    }
}

/// One journaled mutation — the durable form of the repository's
/// three mutating operations.
#[derive(Debug, Clone)]
pub enum JournalRecord {
    /// `Repository::add` / each schema of `add_corpus`.
    Add(Schema),
    /// `Repository::replace` with a real content change (unchanged
    /// replaces are no-ops and journal nothing).
    Replace(Schema),
    /// `Repository::remove`, by schema name.
    Remove(String),
}

impl PartialEq for JournalRecord {
    /// Records compare by content: `Schema` has no `PartialEq`, but its
    /// canonical wire encoding (and therefore [`Schema::content_hash`])
    /// is a faithful identity.
    fn eq(&self, other: &JournalRecord) -> bool {
        match (self, other) {
            (JournalRecord::Add(a), JournalRecord::Add(b))
            | (JournalRecord::Replace(a), JournalRecord::Replace(b)) => {
                a.content_hash() == b.content_hash()
            }
            (JournalRecord::Remove(a), JournalRecord::Remove(b)) => a == b,
            _ => false,
        }
    }
}

impl JournalRecord {
    /// The frame kind byte and payload of this record.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut w = WireWriter::new();
        match self {
            JournalRecord::Add(s) => {
                s.write_wire(&mut w);
                (JOURNAL_ADD, w.into_bytes())
            }
            JournalRecord::Replace(s) => {
                s.write_wire(&mut w);
                (JOURNAL_REPLACE, w.into_bytes())
            }
            JournalRecord::Remove(name) => {
                w.put_str(name);
                (JOURNAL_REMOVE, w.into_bytes())
            }
        }
    }

    /// Decode a record frame. Unknown kinds and malformed payloads are
    /// errors — replay stops rather than guess.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<JournalRecord, String> {
        let mut r = WireReader::new(payload);
        let record = match kind {
            JOURNAL_ADD => {
                JournalRecord::Add(Schema::read_wire(&mut r).map_err(|e| e.to_string())?)
            }
            JOURNAL_REPLACE => {
                JournalRecord::Replace(Schema::read_wire(&mut r).map_err(|e| e.to_string())?)
            }
            JOURNAL_REMOVE => JournalRecord::Remove(r.get_str().map_err(|e| e.to_string())?),
            k => return Err(format!("unknown journal record kind {k:#04x}")),
        };
        r.finish().map_err(|e| e.to_string())?;
        Ok(record)
    }
}

/// The result of scanning journal bytes: everything valid, and where
/// (and why) validity ended.
#[derive(Debug)]
pub struct Scan {
    /// The decoded header frame, if the file begins with a valid one.
    pub header: Option<JournalHeader>,
    /// Every record up to the first damage (or the end).
    pub records: Vec<JournalRecord>,
    /// Byte offset of the end of the header frame (0 when there is no
    /// valid header).
    pub header_len: u64,
    /// Byte offset of the end of each valid record frame, in order —
    /// `offsets[i]` is the file length that keeps records `0..=i`.
    pub offsets: Vec<u64>,
    /// Byte offset of the end of the last valid frame — the truncation
    /// point for a damaged tail.
    pub valid_len: u64,
    /// Why scanning stopped before the end of the input, or `None` for
    /// a clean end-of-file between frames.
    pub stopped: Option<String>,
}

/// Scan journal bytes without touching any file — the pure core of
/// [`Journal::open`], exposed for the corruption property suite.
pub fn scan(bytes: &[u8]) -> Scan {
    let headerless = |stopped: Option<String>| Scan {
        header: None,
        records: Vec::new(),
        header_len: 0,
        offsets: Vec::new(),
        valid_len: 0,
        stopped,
    };
    let mut cur = std::io::Cursor::new(bytes);
    let header = match read_frame(&mut cur) {
        Ok(None) => return headerless(None),
        Ok(Some((JOURNAL_HEADER, payload))) => match JournalHeader::decode(&payload) {
            Ok(h) => h,
            Err(e) => return headerless(Some(format!("malformed journal header: {e}"))),
        },
        Ok(Some((kind, _))) => {
            return headerless(Some(format!(
                "first frame has kind {kind:#04x}, not a journal header"
            )))
        }
        Err(e) => return headerless(Some(format!("unreadable journal header: {e}"))),
    };
    let header_len = cur.position();
    let mut valid_len = header_len;
    let mut records = Vec::new();
    let mut offsets = Vec::new();
    let stopped = loop {
        match read_frame(&mut cur) {
            Ok(None) => break None,
            Ok(Some((kind, payload))) => match JournalRecord::decode(kind, &payload) {
                Ok(r) => {
                    records.push(r);
                    valid_len = cur.position();
                    offsets.push(valid_len);
                }
                Err(e) => break Some(e),
            },
            Err(e) => break Some(e.to_string()),
        }
    };
    Scan { header: Some(header), records, header_len, offsets, valid_len, stopped }
}

/// What [`Journal::open`] recovered (and gave up on).
#[derive(Debug)]
pub struct Recovery {
    /// Records to replay on top of the snapshot, in append order.
    pub records: Vec<JournalRecord>,
    /// Why records (or the whole journal) were not replayed, if
    /// anything was skipped: a damaged tail past the last valid record,
    /// a header naming a different snapshot generation, or a header
    /// from a different configuration/version (preserved on disk, not
    /// replayed). `None` on a fully clean open.
    pub discarded: Option<String>,
    /// Byte offset of the end of the header frame in the opened file.
    header_len: u64,
    /// End offset of each replayed record frame, in order.
    offsets: Vec<u64>,
}

impl Recovery {
    /// The file length that keeps exactly the first `applied` records
    /// (`0` keeps just the header) — the truncation point when a
    /// frame-valid record turns out not to *apply* to the snapshot
    /// state at replay.
    pub fn keep_len(&self, applied: usize) -> u64 {
        if applied == 0 {
            self.header_len
        } else {
            self.offsets[applied - 1]
        }
    }
}

/// An open journal file, positioned for appends.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
    records: u64,
    bytes: u64,
    /// A reset-to-this-header deferred until the first write: the file
    /// still holds another generation's (or configuration's) bytes,
    /// which a handle that never mutates must not destroy.
    pending: Option<JournalHeader>,
}

impl Journal {
    /// Open the journal at `path` against the snapshot generation
    /// described by `header`, replaying what matches and skipping what
    /// does not:
    ///
    /// * no file / empty file → start a fresh journal (not noteworthy);
    /// * valid header equal to `header` → replay every valid record; a
    ///   damaged tail is truncated off the file and reported;
    /// * same version and fingerprints but a different snapshot id —
    ///   the trace of a crash between snapshot publish and journal
    ///   reset → the journal is discarded and restarted eagerly (its
    ///   records are provably folded into the snapshot that was
    ///   published), with the reason reported;
    /// * anything else (damaged header, other fingerprints or version)
    ///   → nothing is replayed, but the file is **preserved on disk**
    ///   and the truncating reset is deferred to the first append or
    ///   [`Journal::reset`]: an accidental open with the wrong
    ///   configuration must not destroy another configuration's
    ///   durable tail (mirroring how a stale snapshot survives until
    ///   the first save).
    pub fn open(path: &Path, header: JournalHeader) -> std::io::Result<(Journal, Recovery)> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let scan = scan(&bytes);
        if scan.header != Some(header) {
            // Records folded into a published snapshot are the only
            // thing that is provably safe to destroy at open.
            let generation_only = scan.header.is_some_and(|h| {
                h.version == header.version
                    && h.config_fp == header.config_fp
                    && h.thesaurus_fp == header.thesaurus_fp
            });
            let discarded = match scan.header {
                None if bytes.is_empty() => None,
                None => Some(
                    scan.stopped
                        .map(|s| format!("journal not replayed: {s} (file preserved)"))
                        .unwrap_or_else(|| "journal not replayed: no header".to_string()),
                ),
                Some(h) if generation_only => Some(format!(
                    "journal discarded: extends snapshot {:#x}, current is {:#x} \
                     (crash between snapshot publish and journal reset; records \
                     already folded in)",
                    h.snapshot_id, header.snapshot_id
                )),
                Some(_) => Some(
                    "journal not replayed: header version or fingerprints differ \
                     (file preserved; reset deferred to the first write)"
                        .to_string(),
                ),
            };
            if generation_only || bytes.is_empty() {
                let journal = Journal::create(path, header)?;
                let header_len = journal.bytes;
                return Ok((
                    journal,
                    Recovery { records: Vec::new(), discarded, header_len, offsets: Vec::new() },
                ));
            }
            let file = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(false)
                .open(path)?;
            let journal = Journal {
                path: path.to_path_buf(),
                file,
                records: 0,
                bytes: 0,
                pending: Some(header),
            };
            return Ok((
                journal,
                Recovery { records: Vec::new(), discarded, header_len: 0, offsets: Vec::new() },
            ));
        }
        let discarded = scan
            .stopped
            .map(|s| format!("journal tail truncated after {} records: {s}", scan.records.len()));
        // Keep the valid prefix; truncation to `valid_len` is explicit.
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        if scan.valid_len < bytes.len() as u64 {
            file.set_len(scan.valid_len)?;
        }
        file.seek(SeekFrom::End(0))?;
        let journal = Journal {
            path: path.to_path_buf(),
            file,
            records: scan.records.len() as u64,
            bytes: scan.valid_len,
            pending: None,
        };
        let recovery = Recovery {
            records: scan.records,
            discarded,
            header_len: scan.header_len,
            offsets: scan.offsets,
        };
        Ok((journal, recovery))
    }

    /// Start a fresh journal at `path` (truncating anything there) with
    /// the given header, fsynced before return.
    pub fn create(path: &Path, header: JournalHeader) -> std::io::Result<Journal> {
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        let mut journal =
            Journal { path: path.to_path_buf(), file, records: 0, bytes: 0, pending: None };
        journal.restart(header)?;
        Ok(journal)
    }

    /// Truncate the file and write a fresh fsynced header — the
    /// "journal folded into snapshot" step of save/compaction.
    pub fn reset(&mut self, header: JournalHeader) -> std::io::Result<()> {
        self.restart(header)?;
        self.pending = None;
        Ok(())
    }

    fn restart(&mut self, header: JournalHeader) -> std::io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        let mut buf = Vec::new();
        write_frame(&mut buf, JOURNAL_HEADER, &header.encode())
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        // Both the write and the fsync go through the JournalReset
        // fault point: a reset is one logical operation to the crash
        // matrix, distinct from ordinary appends.
        fault::write_all(FaultPoint::JournalReset, &self.path, &mut self.file, &buf)?;
        fault::sync(FaultPoint::JournalReset, &self.path, &self.file)?;
        self.records = 0;
        self.bytes = buf.len() as u64;
        Ok(())
    }

    /// Truncate the journal back to `len` bytes / `records` records —
    /// the recovery step when a frame-valid suffix fails to *apply* at
    /// replay. Leaving such a suffix in place would strand every later
    /// append behind a record that can never replay.
    pub fn truncate_to(&mut self, len: u64, records: u64) -> std::io::Result<()> {
        self.file.set_len(len)?;
        self.file.seek(SeekFrom::Start(len))?;
        self.file.sync_all()?;
        self.records = records;
        self.bytes = len;
        Ok(())
    }

    /// Append one record frame. **Not** a durability point by itself —
    /// call [`Journal::sync`] to make everything appended so far
    /// survive a crash. A deferred reset from [`Journal::open`] (the
    /// file held another configuration's bytes) is performed first, so
    /// the preserved foreign tail survives exactly until this handle
    /// commits its first record.
    pub fn append(&mut self, record: &JournalRecord) -> std::io::Result<()> {
        if let Some(h) = self.pending {
            self.restart(h)?;
            self.pending = None;
        }
        let (kind, payload) = record.encode();
        let mut buf = Vec::new();
        write_frame(&mut buf, kind, &payload).map_err(|e| std::io::Error::other(e.to_string()))?;
        fault::write_all(FaultPoint::JournalAppend, &self.path, &mut self.file, &buf)?;
        self.records += 1;
        self.bytes += buf.len() as u64;
        Ok(())
    }

    /// Fsync the journal file: everything appended before this call is
    /// durable once it returns.
    pub fn sync(&self) -> std::io::Result<()> {
        fault::sync(FaultPoint::JournalSync, &self.path, &self.file)
    }

    /// Mutation records in the file (excluding the header).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Bytes written to the file (header included).
    pub fn bytes_len(&self) -> u64 {
        self.bytes
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cupid_model::{DataType, ElementKind, SchemaBuilder};
    use std::sync::atomic::{AtomicU32, Ordering};

    fn temp_journal() -> PathBuf {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "cupid-journal-test-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        journal_path(&dir.join("cupid.repo"))
    }

    fn cleanup(path: &Path) {
        if let Some(dir) = path.parent() {
            std::fs::remove_dir_all(dir).ok();
        }
    }

    fn schema(name: &str, field: &str) -> Schema {
        let mut b = SchemaBuilder::new(name);
        let item = b.structured(b.root(), "Item", ElementKind::XmlElement);
        b.atomic(item, field, ElementKind::XmlElement, DataType::Int);
        b.build().unwrap()
    }

    fn header(snapshot_id: u64) -> JournalHeader {
        JournalHeader { version: JOURNAL_VERSION, config_fp: 11, thesaurus_fp: 22, snapshot_id }
    }

    #[test]
    fn append_sync_reopen_replays_in_order() {
        let path = temp_journal();
        let want = vec![
            JournalRecord::Add(schema("A", "Qty")),
            JournalRecord::Replace(schema("A", "Quantity")),
            JournalRecord::Remove("A".to_string()),
        ];
        {
            let mut j = Journal::create(&path, header(7)).unwrap();
            for r in &want {
                j.append(r).unwrap();
            }
            j.sync().unwrap();
            assert_eq!(j.records(), 3);
        }
        let (j, recovery) = Journal::open(&path, header(7)).unwrap();
        assert_eq!(recovery.records, want);
        assert!(recovery.discarded.is_none());
        assert_eq!(j.records(), 3);
        cleanup(&path);
    }

    #[test]
    fn damaged_tail_is_truncated_to_last_valid_record() {
        let path = temp_journal();
        {
            let mut j = Journal::create(&path, header(1)).unwrap();
            j.append(&JournalRecord::Add(schema("A", "Qty"))).unwrap();
            j.append(&JournalRecord::Add(schema("B", "Qty"))).unwrap();
            j.sync().unwrap();
        }
        // Chop the file mid-way through the last record: replay keeps
        // the first record and the file shrinks to the valid prefix.
        let bytes = std::fs::read(&path).unwrap();
        let scan_all = scan(&bytes);
        assert_eq!(scan_all.records.len(), 2);
        let cut = (scan_all.valid_len - 3) as usize;
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let (j, recovery) = Journal::open(&path, header(1)).unwrap();
        assert_eq!(recovery.records.len(), 1);
        assert!(recovery.discarded.unwrap().contains("truncated after 1 records"));
        let len = std::fs::metadata(&path).unwrap().len();
        assert!(len < cut as u64, "damaged tail removed from the file");
        assert_eq!(j.records(), 1);
        // A reopen of the truncated file is fully clean.
        drop(j);
        let (_, again) = Journal::open(&path, header(1)).unwrap();
        assert_eq!(again.records.len(), 1);
        assert!(again.discarded.is_none());
        cleanup(&path);
    }

    #[test]
    fn mismatched_snapshot_generation_discards_journal() {
        let path = temp_journal();
        {
            let mut j = Journal::create(&path, header(1)).unwrap();
            j.append(&JournalRecord::Add(schema("A", "Qty"))).unwrap();
            j.sync().unwrap();
        }
        // Same fingerprints, different snapshot id: the crash-between-
        // rename-and-reset case. Records are discarded, not replayed.
        let (j, recovery) = Journal::open(&path, header(2)).unwrap();
        assert!(recovery.records.is_empty());
        assert!(recovery.discarded.unwrap().contains("extends snapshot"));
        assert_eq!(j.records(), 0);
        cleanup(&path);
    }

    #[test]
    fn reset_starts_a_new_generation() {
        let path = temp_journal();
        let mut j = Journal::create(&path, header(1)).unwrap();
        j.append(&JournalRecord::Add(schema("A", "Qty"))).unwrap();
        j.sync().unwrap();
        let full = j.bytes_len();
        j.reset(header(9)).unwrap();
        assert_eq!(j.records(), 0);
        assert!(j.bytes_len() < full);
        drop(j);
        let (_, recovery) = Journal::open(&path, header(9)).unwrap();
        assert!(recovery.records.is_empty());
        assert!(recovery.discarded.is_none());
        cleanup(&path);
    }

    #[test]
    fn garbage_and_foreign_files_are_skipped_loudly_but_preserved() {
        let path = temp_journal();
        std::fs::write(&path, b"not a journal at all").unwrap();
        let (j, recovery) = Journal::open(&path, header(3)).unwrap();
        assert!(recovery.records.is_empty());
        assert!(recovery.discarded.unwrap().contains("journal not replayed"));
        // Unrecognizable bytes are not replayed, but they are not
        // destroyed either while this handle never writes.
        drop(j);
        assert_eq!(std::fs::read(&path).unwrap(), b"not a journal at all");
        // A lone valid non-header frame is not a journal either.
        let mut buf = Vec::new();
        write_frame(&mut buf, JOURNAL_ADD, b"xx").unwrap();
        std::fs::write(&path, &buf).unwrap();
        let scanned = scan(&std::fs::read(&path).unwrap());
        assert!(scanned.stopped.unwrap().contains("not a journal header"));
        cleanup(&path);
    }

    #[test]
    fn mismatched_fingerprints_defer_reset_until_first_write() {
        let path = temp_journal();
        {
            let mut j = Journal::create(&path, header(1)).unwrap();
            j.append(&JournalRecord::Add(schema("A", "Qty"))).unwrap();
            j.sync().unwrap();
        }
        let before = std::fs::read(&path).unwrap();
        // An accidental open under a different matcher configuration:
        // nothing replays, and — crucially — nothing is destroyed.
        let foreign = JournalHeader {
            version: JOURNAL_VERSION,
            config_fp: 99,
            thesaurus_fp: 22,
            snapshot_id: 1,
        };
        {
            let (j, recovery) = Journal::open(&path, foreign).unwrap();
            assert!(recovery.records.is_empty());
            assert!(recovery.discarded.unwrap().contains("fingerprints differ"));
            assert_eq!(j.records(), 0);
        }
        assert_eq!(std::fs::read(&path).unwrap(), before, "foreign open must not write");
        // The rightful configuration still replays the preserved tail.
        let (_, recovery) = Journal::open(&path, header(1)).unwrap();
        assert_eq!(recovery.records.len(), 1);
        assert!(recovery.discarded.is_none());
        // The first append under the foreign header performs the
        // deferred reset: the file now belongs to the new generation.
        let (mut j, _) = Journal::open(&path, foreign).unwrap();
        j.append(&JournalRecord::Add(schema("B", "Qty"))).unwrap();
        j.sync().unwrap();
        assert_eq!(j.records(), 1);
        drop(j);
        let (_, recovery) = Journal::open(&path, foreign).unwrap();
        assert_eq!(recovery.records.len(), 1);
        assert!(recovery.discarded.is_none());
        cleanup(&path);
    }

    #[test]
    fn truncate_to_drops_a_non_applying_suffix() {
        let path = temp_journal();
        let mut j = Journal::create(&path, header(1)).unwrap();
        j.append(&JournalRecord::Add(schema("A", "Qty"))).unwrap();
        j.append(&JournalRecord::Add(schema("B", "Qty"))).unwrap();
        j.sync().unwrap();
        drop(j);
        let (mut j, recovery) = Journal::open(&path, header(1)).unwrap();
        assert_eq!(recovery.records.len(), 2);
        // Keep only the first record, as replay does when the second
        // fails to apply; appends after the cut stay replayable.
        j.truncate_to(recovery.keep_len(1), 1).unwrap();
        assert_eq!(j.records(), 1);
        j.append(&JournalRecord::Add(schema("C", "Qty"))).unwrap();
        j.sync().unwrap();
        drop(j);
        let (_, again) = Journal::open(&path, header(1)).unwrap();
        assert_eq!(again.records.len(), 2);
        assert!(again.discarded.is_none());
        cleanup(&path);
    }
}
