//! Corpus-scale batch matching: [`MatchSession`] (DESIGN.md §7).
//!
//! A session amortizes everything a single [`crate::Cupid`] match throws
//! away: each schema is prepared **once** (expansion, normalization,
//! categorization, interning into one session-wide `TokenTable`), and
//! one growable token-similarity memo persists across every pair, so a
//! distinct token pair is computed once per *corpus* instead of once per
//! *match*. Pair worklists are sharded across OS threads with
//! [`std::thread::scope`]; results are bit-identical to running the same
//! pairs as independent [`crate::Cupid::match_schemas`] calls, which
//! `tests/batch_equivalence.rs` proves under 1, 2 and 4 threads.
//!
//! Batch results are lightweight [`MatchSummary`] values (mappings +
//! top-k leaf similarities + pruning counters): an all-pairs run over an
//! N-schema corpus must not hold O(N²) cloned trees and similarity
//! matrices. Use the single-pair API ([`crate::Cupid::match_schemas`])
//! when the full [`crate::MatchOutcome`] is needed.
//!
//! ```
//! use cupid_core::session::MatchSession;
//! use cupid_core::CupidConfig;
//! use cupid_lexical::Thesaurus;
//! use cupid_model::{DataType, ElementKind, SchemaBuilder};
//!
//! let schema = |name: &str, field: &str| {
//!     let mut b = SchemaBuilder::new(name);
//!     let item = b.structured(b.root(), "Item", ElementKind::XmlElement);
//!     b.atomic(item, field, ElementKind::XmlElement, DataType::Int);
//!     b.build().unwrap()
//! };
//! let corpus = [schema("A", "Quantity"), schema("B", "Quantity"), schema("C", "Flags")];
//!
//! let cfg = CupidConfig::default();
//! let thesaurus = Thesaurus::with_default_stopwords();
//! let mut session = MatchSession::new(&cfg, &thesaurus);
//! let ids = session.add_corpus(&corpus).unwrap();
//! let summaries = session.match_all_pairs();
//! assert_eq!(summaries.len(), 3); // (A,B), (A,C), (B,C)
//! assert_eq!(ids.len(), session.stats().schemas);
//! ```

use cupid_lexical::{SimStore, Thesaurus, TokenSimCache, TokenTable};
use cupid_model::{
    expand, ModelError, NodeId, Schema, SchemaTree, WireError, WireReader, WireWriter,
};

use crate::config::CupidConfig;
use crate::linguistic::{pair_lsim, LsimTable, RawSchemaLing, SchemaLing};
use crate::mapping::{leaf_mappings, nonleaf_mappings, Cardinality, MappingElement};
use crate::treematch::tree_match;

/// Handle of a schema prepared into a [`MatchSession`], in preparation
/// order. Only meaningful relative to the session that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SchemaId(usize);

impl SchemaId {
    /// The dense index of this schema in its session.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }

    /// Construct from a dense index. Callers that persist or remap
    /// summaries (the repository's incremental pair cache) use this to
    /// re-anchor a summary to the current session's indices; bounds are
    /// the caller's obligation.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        SchemaId(i)
    }
}

/// One schema's complete per-schema precompute: the expanded tree plus
/// the interned linguistic artifacts. Self-contained (no borrow of the
/// input [`Schema`]), so pair execution over shared `&PreparedSchema`s
/// can run on worker threads.
#[derive(Debug, Clone)]
pub struct PreparedSchema {
    /// The schema's name (for reports).
    pub name: String,
    /// Expanded schema tree (§8).
    pub tree: SchemaTree,
    /// Interned linguistic precompute (names, categories, id slices).
    pub ling: SchemaLing,
}

impl PreparedSchema {
    /// Export the precompute into the wire format (DESIGN.md §8): the
    /// expanded tree plus the interned linguistic artifacts, verbatim.
    /// A decoded `PreparedSchema` drives pair execution without
    /// re-running expansion, normalization, categorization or interning.
    pub fn write_wire(&self, w: &mut WireWriter) {
        w.put_str(&self.name);
        self.tree.write_wire(w);
        self.ling.write_wire(w);
    }

    /// Import a precompute written by [`PreparedSchema::write_wire`].
    /// `vocab` is the vocabulary size of the session [`TokenTable`] the
    /// snapshot was taken with; all interned ids are checked against it.
    pub fn read_wire(r: &mut WireReader<'_>, vocab: usize) -> Result<PreparedSchema, WireError> {
        let name = r.get_str()?;
        let tree = SchemaTree::read_wire(r)?;
        let ling = SchemaLing::read_wire(r, vocab)?;
        // Cross-check the two halves: every tree node must point at a
        // linguistic entry, or pair execution (and the discovery index)
        // would index past `ling.names`.
        for (id, node) in tree.iter() {
            if node.element.index() >= ling.len() {
                return Err(r.err(format!(
                    "tree node {id} references element {} but the schema has {} elements",
                    node.element,
                    ling.len()
                )));
            }
        }
        Ok(PreparedSchema { name, tree, ling })
    }
}

/// One leaf-pair similarity entry of a [`MatchSummary`]'s top-k list.
#[derive(Debug, Clone, PartialEq)]
pub struct SimilarityEntry {
    /// Source context path.
    pub source_path: String,
    /// Target context path.
    pub target_path: String,
    /// Weighted similarity of the pair.
    pub wsim: f64,
}

/// Lightweight per-pair result for batch mode: the generated mappings
/// and the top-k leaf similarities, with the trees and similarity
/// matrices dropped. An all-pairs corpus run holds O(N²) of these, so
/// they must stay small; the single-pair API ([`crate::Cupid`]) keeps
/// returning the full [`crate::MatchOutcome`].
#[derive(Debug, Clone, PartialEq)]
pub struct MatchSummary {
    /// Source schema.
    pub source: SchemaId,
    /// Target schema.
    pub target: SchemaId,
    /// Leaf-level mapping (the paper's naïve 1:n generator, §7).
    pub leaf_mappings: Vec<MappingElement>,
    /// Non-leaf 1:1 mapping.
    pub nonleaf_mappings: Vec<MappingElement>,
    /// The k highest-`wsim` leaf pairs (threshold-free), descending;
    /// ties broken by node indices for determinism.
    pub top_pairs: Vec<SimilarityEntry>,
    /// Element pairs the linguistic phase actually compared.
    pub compared_pairs: usize,
    /// Total element pairs (`|S1| × |S2|`).
    pub total_pairs: usize,
}

impl MatchSummary {
    /// True if some leaf mapping relates the two context paths.
    pub fn has_leaf_mapping(&self, source_path: &str, target_path: &str) -> bool {
        self.leaf_mappings
            .iter()
            .any(|m| m.source_path == source_path && m.target_path == target_path)
    }

    /// Highest leaf-pair weighted similarity (0.0 for empty schemas) —
    /// the usual ranking score for corpus discovery.
    pub fn best_wsim(&self) -> f64 {
        self.top_pairs.first().map_or(0.0, |e| e.wsim)
    }

    /// Encode the summary, similarity bits included, for the
    /// repository's persisted pair cache (DESIGN.md §8).
    pub fn write_wire(&self, w: &mut WireWriter) {
        w.put_u32(self.source.0 as u32);
        w.put_u32(self.target.0 as u32);
        for mappings in [&self.leaf_mappings, &self.nonleaf_mappings] {
            w.put_len(mappings.len());
            for m in mappings {
                w.put_u32(m.source.index() as u32);
                w.put_u32(m.target.index() as u32);
                w.put_str(&m.source_path);
                w.put_str(&m.target_path);
                w.put_f64(m.wsim);
                w.put_f64(m.ssim);
                w.put_f64(m.lsim);
            }
        }
        w.put_len(self.top_pairs.len());
        for e in &self.top_pairs {
            w.put_str(&e.source_path);
            w.put_str(&e.target_path);
            w.put_f64(e.wsim);
        }
        // Plain u64 counters, not put_len: these are statistics, not
        // allocation counts — they may legitimately exceed the
        // remaining input length that get_len sanity-checks against
        // (total_pairs is |S1|·|S2|), and must never truncate.
        w.put_u64(self.compared_pairs as u64);
        w.put_u64(self.total_pairs as u64);
    }

    /// Decode a summary written by [`MatchSummary::write_wire`].
    pub fn read_wire(r: &mut WireReader<'_>) -> Result<MatchSummary, WireError> {
        let source = SchemaId(r.get_u32()? as usize);
        let target = SchemaId(r.get_u32()? as usize);
        let read_mappings = |r: &mut WireReader<'_>| -> Result<Vec<MappingElement>, WireError> {
            let n = r.get_len()?;
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(MappingElement {
                    source: NodeId::from_index(r.get_u32()? as usize),
                    target: NodeId::from_index(r.get_u32()? as usize),
                    source_path: r.get_str()?,
                    target_path: r.get_str()?,
                    wsim: r.get_f64()?,
                    ssim: r.get_f64()?,
                    lsim: r.get_f64()?,
                });
            }
            Ok(out)
        };
        let leaf_mappings = read_mappings(r)?;
        let nonleaf_mappings = read_mappings(r)?;
        let n = r.get_len()?;
        let mut top_pairs = Vec::with_capacity(n);
        for _ in 0..n {
            top_pairs.push(SimilarityEntry {
                source_path: r.get_str()?,
                target_path: r.get_str()?,
                wsim: r.get_f64()?,
            });
        }
        Ok(MatchSummary {
            source,
            target,
            leaf_mappings,
            nonleaf_mappings,
            top_pairs,
            compared_pairs: r.get_u64()? as usize,
            total_pairs: r.get_u64()? as usize,
        })
    }
}

/// Aggregate counters of a session, for reports and the `batch` bench
/// context block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Schemas prepared into the session.
    pub schemas: usize,
    /// Pairs matched so far (across all `match_*` calls).
    pub pairs_matched: usize,
    /// Distinct interned tokens across the whole corpus (`|V|`).
    pub vocab_size: usize,
    /// Approximate heap bytes held by the session's [`TokenTable`]
    /// (entry text + index keys + fixed overhead) — the interner's
    /// memory footprint gauge.
    pub vocab_bytes: usize,
    /// Distinct token pairs whose similarity is memoized in the session
    /// store — every further comparison anywhere in the corpus is a
    /// lookup.
    pub distinct_pairs_computed: usize,
    /// Chunks the session's [`SimStore`] has allocated (32 KiB each;
    /// only touched regions of the triangular index space materialize).
    pub sim_chunks: usize,
    /// Bytes committed by those chunks — the memo's memory footprint.
    pub sim_bytes: usize,
}

/// A batch-matching session: shared interner, persistent similarity
/// memo, per-schema precompute, sharded pair execution (DESIGN.md §7).
///
/// Construct via [`MatchSession::new`] or [`crate::Cupid::session`],
/// [`MatchSession::add`]/[`add_corpus`](MatchSession::add_corpus) the
/// schemas, then run [`match_pair`](MatchSession::match_pair),
/// [`match_pairs`](MatchSession::match_pairs) or
/// [`match_all_pairs`](MatchSession::match_all_pairs). Results are
/// bit-identical to independent [`crate::Cupid::match_schemas`] calls
/// regardless of the thread count.
#[derive(Debug)]
pub struct MatchSession<'a> {
    config: &'a CupidConfig,
    thesaurus: &'a Thesaurus,
    table: TokenTable,
    store: SimStore,
    schemas: Vec<PreparedSchema>,
    threads: usize,
    top_k: usize,
    pairs_matched: usize,
}

impl<'a> MatchSession<'a> {
    /// A session over a configuration and thesaurus (both outlive the
    /// session; one thesaurus serves the whole corpus).
    ///
    /// Defaults: one worker thread per available CPU (capped at 8) and
    /// `top_k = 10` similarity entries per summary.
    pub fn new(config: &'a CupidConfig, thesaurus: &'a Thesaurus) -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get().min(8));
        MatchSession {
            config,
            thesaurus,
            table: TokenTable::new(),
            store: SimStore::new(),
            schemas: Vec::new(),
            threads,
            top_k: 10,
            pairs_matched: 0,
        }
    }

    /// Set the worker-thread count for sharded pair execution (and for
    /// parallel per-schema prepare). `1` keeps everything on the calling
    /// thread, where the session memo is shared perfectly across all
    /// pairs; `n > 1` shards the worklist, each shard working on a clone
    /// of the warm memo that is merged back afterwards. The thread count
    /// never affects results, only wall-clock time.
    pub fn threads(mut self, n: usize) -> Self {
        self.set_threads(n);
        self
    }

    /// Set the worker-thread count on an existing session (the
    /// non-consuming form of [`MatchSession::threads`]).
    pub fn set_threads(&mut self, n: usize) {
        self.threads = n.max(1);
    }

    /// Set how many top leaf similarities each [`MatchSummary`] keeps.
    pub fn top_k(mut self, k: usize) -> Self {
        self.top_k = k;
        self
    }

    /// Prepare one schema into the session: expansion, normalization,
    /// categorization, interning — each done exactly once no matter how
    /// many pairs the schema later participates in.
    pub fn add(&mut self, schema: &Schema) -> Result<SchemaId, ModelError> {
        let tree = expand(schema, &self.config.expand)?;
        let raw = RawSchemaLing::of(schema, self.thesaurus);
        Ok(self.push_prepared(schema.name().to_string(), tree, raw))
    }

    /// Prepare a whole corpus. The thread-safe half of preparation
    /// (expansion, normalization, categorization) fans out across the
    /// session's worker threads; interning into the shared table then
    /// runs sequentially in corpus order, so ids — and therefore every
    /// downstream artifact — are independent of thread scheduling.
    ///
    /// All-or-nothing: if any schema fails to expand, the error is
    /// returned and the session is left exactly as it was — no schema
    /// of the batch is added, so a retry after fixing the corpus cannot
    /// create duplicates.
    pub fn add_corpus(&mut self, schemas: &[Schema]) -> Result<Vec<SchemaId>, ModelError> {
        let threads = self.threads.min(schemas.len()).max(1);
        let config = self.config;
        let thesaurus = self.thesaurus;
        let mut raw: Vec<Option<Result<(SchemaTree, RawSchemaLing), ModelError>>> = Vec::new();
        if threads <= 1 {
            for s in schemas {
                raw.push(Some(prepare_raw(s, config, thesaurus)));
            }
        } else {
            raw.resize_with(schemas.len(), || None);
            let chunk = schemas.len().div_ceil(threads);
            std::thread::scope(|scope| {
                let workers: Vec<_> = schemas
                    .chunks(chunk)
                    .enumerate()
                    .map(|(w, shard)| {
                        scope.spawn(move || {
                            let prepared: Vec<_> =
                                shard.iter().map(|s| prepare_raw(s, config, thesaurus)).collect();
                            (w * chunk, prepared)
                        })
                    })
                    .collect();
                for worker in workers {
                    let (base, prepared) = worker.join().expect("prepare worker panicked");
                    for (i, p) in prepared.into_iter().enumerate() {
                        raw[base + i] = Some(p);
                    }
                }
            });
        }
        // Surface any preparation error before mutating the session, so
        // a failed batch leaves no partial state behind.
        let mut prepared = Vec::with_capacity(schemas.len());
        for r in raw {
            prepared.push(r.expect("every schema prepared")?);
        }
        let mut ids = Vec::with_capacity(schemas.len());
        for (s, (tree, raw)) in schemas.iter().zip(prepared) {
            ids.push(self.push_prepared(s.name().to_string(), tree, raw));
        }
        Ok(ids)
    }

    fn push_prepared(&mut self, name: String, tree: SchemaTree, raw: RawSchemaLing) -> SchemaId {
        let ling = raw.intern(&mut self.table);
        self.schemas.push(PreparedSchema { name, tree, ling });
        SchemaId(self.schemas.len() - 1)
    }

    /// Re-prepare the schema at `id` in place — the incremental-update
    /// primitive behind the repository's `replace`. The new schema's
    /// tokens are interned into the (append-only) session table; stale
    /// tokens from the old version stay interned, which wastes a few
    /// table entries but keeps every other schema's id slices — and the
    /// whole warm similarity memo — valid.
    pub fn replace(&mut self, id: SchemaId, schema: &Schema) -> Result<(), ModelError> {
        let tree = expand(schema, &self.config.expand)?;
        let raw = RawSchemaLing::of(schema, self.thesaurus);
        let ling = raw.intern(&mut self.table);
        self.schemas[id.0] = PreparedSchema { name: schema.name().to_string(), tree, ling };
        Ok(())
    }

    /// Remove the schema at `id`. Every schema after it shifts down by
    /// one — all previously issued [`SchemaId`]s at or past `id` are
    /// invalidated, which is why this is a building block for the
    /// repository (which tracks schemas by name and re-derives ids)
    /// rather than a casual session operation. The interner and memo
    /// are untouched: ids of the remaining schemas stay valid.
    pub fn remove(&mut self, id: SchemaId) -> PreparedSchema {
        self.schemas.remove(id.0)
    }

    /// Rebuild a session from exported state: the (config, thesaurus)
    /// pair it will match under, plus the token table, similarity memo
    /// and prepared schemas of a snapshot. The caller attests the three
    /// parts belong together — the repository enforces this with
    /// config/thesaurus fingerprints before calling (DESIGN.md §8).
    pub fn from_parts(
        config: &'a CupidConfig,
        thesaurus: &'a Thesaurus,
        table: TokenTable,
        store: SimStore,
        schemas: Vec<PreparedSchema>,
    ) -> Self {
        let mut session = MatchSession::new(config, thesaurus);
        session.table = table;
        session.store = store;
        session.schemas = schemas;
        session
    }

    /// Decompose the session into its persistent parts (token table,
    /// similarity memo, prepared schemas) for snapshotting.
    pub fn into_parts(self) -> (TokenTable, SimStore, Vec<PreparedSchema>) {
        (self.table, self.store, self.schemas)
    }

    /// The session's token table (snapshot export).
    pub fn table(&self) -> &TokenTable {
        &self.table
    }

    /// The session's similarity memo (snapshot export).
    pub fn store(&self) -> &SimStore {
        &self.store
    }

    /// Number of schemas prepared so far.
    pub fn len(&self) -> usize {
        self.schemas.len()
    }

    /// True if no schema has been prepared yet.
    pub fn is_empty(&self) -> bool {
        self.schemas.is_empty()
    }

    /// A prepared schema, by id.
    pub fn schema(&self, id: SchemaId) -> &PreparedSchema {
        &self.schemas[id.0]
    }

    /// All prepared schemas, in preparation order (snapshot export and
    /// index construction).
    pub fn prepared(&self) -> &[PreparedSchema] {
        &self.schemas
    }

    /// All schema ids, in preparation order.
    pub fn ids(&self) -> impl Iterator<Item = SchemaId> {
        (0..self.schemas.len()).map(SchemaId)
    }

    /// Aggregate session counters.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            schemas: self.schemas.len(),
            pairs_matched: self.pairs_matched,
            vocab_size: self.table.len(),
            vocab_bytes: self.table.approx_bytes(),
            distinct_pairs_computed: self.store.distinct_pairs_computed(),
            sim_chunks: self.store.allocated_chunks(),
            sim_bytes: self.store.allocated_bytes(),
        }
    }

    /// Match one prepared pair on the calling thread, reusing (and
    /// further warming) the session's persistent similarity memo.
    pub fn match_pair(&mut self, source: SchemaId, target: SchemaId) -> MatchSummary {
        let store = std::mem::take(&mut self.store);
        let mut cache =
            TokenSimCache::with_store(&self.table, self.thesaurus, &self.config.affix, store);
        let summary = execute_pair(
            self.config,
            &self.schemas[source.0],
            &self.schemas[target.0],
            source,
            target,
            self.top_k,
            &mut cache,
        );
        self.store = cache.into_store();
        self.pairs_matched += 1;
        summary
    }

    /// Match one prepared pair through a **shared** (`&self`) handle —
    /// the read half of the session's read/write split (DESIGN.md §9).
    ///
    /// Pair execution is a pure function of frozen inputs, so it needs
    /// no exclusive access: this method runs the pair over a clone of
    /// the warm similarity memo and returns the summary together with
    /// that warmed clone. Results are bit-identical to
    /// [`MatchSession::match_pair`]; the only difference is bookkeeping
    /// — the session's own memo and `pairs_matched` counter are
    /// untouched until the caller hands the warmed store back through
    /// [`MatchSession::absorb`] (or drops it, which only costs future
    /// recomputation).
    ///
    /// This is what lets a daemon answer match requests from many
    /// threads under a read lock, serializing only the cheap merge.
    pub fn match_pair_shared(
        &self,
        source: SchemaId,
        target: SchemaId,
    ) -> (MatchSummary, SimStore) {
        let (mut summaries, store) = self.match_pairs_shared(&[(source, target)]);
        (summaries.pop().expect("one pair in, one summary out"), store)
    }

    /// The worklist form of [`MatchSession::match_pair_shared`]: run a
    /// whole worklist through **one** clone of the warm memo on the
    /// calling thread, returning the summaries in worklist order plus
    /// that single warmed clone. A caller serving an N-pair discovery
    /// request pays one memo clone and one merge instead of N of each.
    pub fn match_pairs_shared(
        &self,
        worklist: &[(SchemaId, SchemaId)],
    ) -> (Vec<MatchSummary>, SimStore) {
        let mut cache = TokenSimCache::with_store(
            &self.table,
            self.thesaurus,
            &self.config.affix,
            self.store.clone(),
        );
        let summaries = worklist
            .iter()
            .map(|&(source, target)| {
                execute_pair(
                    self.config,
                    &self.schemas[source.0],
                    &self.schemas[target.0],
                    source,
                    target,
                    self.top_k,
                    &mut cache,
                )
            })
            .collect();
        (summaries, cache.into_store())
    }

    /// Absorb the results of [`MatchSession::match_pair_shared`] calls:
    /// merge a warmed store clone back into the session memo and credit
    /// `pairs` executions to the session counters. The write half of the
    /// read/write split — call it under exclusive access.
    pub fn absorb(&mut self, store: SimStore, pairs: usize) {
        self.store.merge(store);
        self.pairs_matched += pairs;
    }

    /// Explain one prepared pair: re-execute it with instrumentation and
    /// return per-mapping score provenance (DESIGN.md §14). The match
    /// itself never pays for this — explanations are produced by this
    /// separate entry point, and pair execution is a pure function of
    /// frozen prepared state, so the captured scores are bit-identical
    /// to what [`MatchSession::match_pair`] reports.
    pub fn explain_pair(
        &mut self,
        source: SchemaId,
        target: SchemaId,
    ) -> crate::explain::PairExplanation {
        let store = std::mem::take(&mut self.store);
        let mut cache =
            TokenSimCache::with_store(&self.table, self.thesaurus, &self.config.affix, store);
        let ex = crate::explain::explain_pair(
            self.config,
            &self.schemas[source.0],
            &self.schemas[target.0],
            &self.table,
            self.thesaurus,
            &mut cache,
        );
        self.store = cache.into_store();
        ex
    }

    /// The shared (`&self`) form of [`MatchSession::explain_pair`],
    /// mirroring [`MatchSession::match_pair_shared`]: the pair is
    /// explained over a clone of the warm similarity memo, which is
    /// returned for the caller to [`MatchSession::absorb`] (or drop).
    pub fn explain_pair_shared(
        &self,
        source: SchemaId,
        target: SchemaId,
    ) -> (crate::explain::PairExplanation, SimStore) {
        let mut cache = TokenSimCache::with_store(
            &self.table,
            self.thesaurus,
            &self.config.affix,
            self.store.clone(),
        );
        let ex = crate::explain::explain_pair(
            self.config,
            &self.schemas[source.0],
            &self.schemas[target.0],
            &self.table,
            self.thesaurus,
            &mut cache,
        );
        (ex, cache.into_store())
    }

    /// The linguistic similarity table of a prepared pair, computed
    /// through the session memo — diagnostics, and the anchor of the
    /// batch-equivalence suite (bit-identical to
    /// [`crate::linguistic::analyze`] on the same schemas).
    pub fn lsim_of(&mut self, source: SchemaId, target: SchemaId) -> LsimTable {
        let store = std::mem::take(&mut self.store);
        let mut cache =
            TokenSimCache::with_store(&self.table, self.thesaurus, &self.config.affix, store);
        let pair = pair_lsim(
            &self.schemas[source.0].ling,
            &self.schemas[target.0].ling,
            self.config,
            &mut cache,
        );
        self.store = cache.into_store();
        pair.lsim
    }

    /// Match an explicit worklist of prepared pairs, sharded across the
    /// session's worker threads. Summaries come back in worklist order;
    /// results are bit-identical for every thread count (DESIGN.md §7:
    /// each pair is a pure function of frozen inputs, and cache state
    /// only decides *when* a token-pair similarity is computed, never
    /// *what* it is).
    pub fn match_pairs(&mut self, worklist: &[(SchemaId, SchemaId)]) -> Vec<MatchSummary> {
        let threads = self.threads.min(worklist.len());
        if threads <= 1 {
            return worklist.iter().map(|&(a, b)| self.match_pair(a, b)).collect();
        }
        let mut store = std::mem::take(&mut self.store);
        let chunk = worklist.len().div_ceil(threads);
        let this = &*self;
        let mut summaries: Vec<MatchSummary> = Vec::with_capacity(worklist.len());
        let mut shard_stores: Vec<SimStore> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let workers: Vec<_> = worklist
                .chunks(chunk)
                .map(|shard| {
                    // Every shard starts from a clone of the warm session
                    // memo: prior work is shared, only newly discovered
                    // token pairs can be duplicated across shards.
                    let shard_store = store.clone();
                    scope.spawn(move || {
                        let mut cache = TokenSimCache::with_store(
                            &this.table,
                            this.thesaurus,
                            &this.config.affix,
                            shard_store,
                        );
                        let out: Vec<MatchSummary> = shard
                            .iter()
                            .map(|&(a, b)| {
                                execute_pair(
                                    this.config,
                                    &this.schemas[a.0],
                                    &this.schemas[b.0],
                                    a,
                                    b,
                                    this.top_k,
                                    &mut cache,
                                )
                            })
                            .collect();
                        (out, cache.into_store())
                    })
                })
                .collect();
            for worker in workers {
                let (out, shard_store) = worker.join().expect("match worker panicked");
                summaries.extend(out);
                shard_stores.push(shard_store);
            }
        });
        for shard_store in shard_stores {
            store.merge(shard_store);
        }
        self.store = store;
        self.pairs_matched += worklist.len();
        summaries
    }

    /// Match every unordered schema pair `(i, j)` with `i < j`, in
    /// lexicographic order — the Valentine-style all-pairs discovery
    /// workload.
    pub fn match_all_pairs(&mut self) -> Vec<MatchSummary> {
        let n = self.schemas.len();
        let mut worklist = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                worklist.push((SchemaId(i), SchemaId(j)));
            }
        }
        self.match_pairs(&worklist)
    }
}

/// Per-schema raw preparation (the parallel-safe half of `add_corpus`).
fn prepare_raw(
    schema: &Schema,
    config: &CupidConfig,
    thesaurus: &Thesaurus,
) -> Result<(SchemaTree, RawSchemaLing), ModelError> {
    let tree = expand(schema, &config.expand)?;
    Ok((tree, RawSchemaLing::of(schema, thesaurus)))
}

/// Execute one pair over frozen prepared schemas: per-pair linguistic
/// combine, TreeMatch, mapping generation, top-k extraction. Mirrors
/// [`crate::Cupid::match_trees`] (same phases, same cardinalities), so
/// summaries agree bit-for-bit with the single-pair API.
fn execute_pair(
    cfg: &CupidConfig,
    s1: &PreparedSchema,
    s2: &PreparedSchema,
    source: SchemaId,
    target: SchemaId,
    top_k: usize,
    cache: &mut TokenSimCache<'_>,
) -> MatchSummary {
    let pair = pair_lsim(&s1.ling, &s2.ling, cfg, cache);
    let res = tree_match(&s1.tree, &s2.tree, &pair.lsim, cfg);
    let leaf = leaf_mappings(&s1.tree, &s2.tree, &res, &pair.lsim, cfg, Cardinality::OneToN);
    let nonleaf =
        nonleaf_mappings(&s1.tree, &s2.tree, &res, &pair.lsim, cfg, Cardinality::OneToOne);

    // Top-k leaf similarities, threshold-free (discovery signal even
    // when nothing clears th_accept). Deterministic order: descending
    // wsim, then source/target node index.
    let leaves = |tree: &SchemaTree| -> Vec<usize> {
        tree.iter().filter(|(_, n)| n.is_leaf()).map(|(id, _)| id.index()).collect()
    };
    let (leaves1, leaves2) = (leaves(&s1.tree), leaves(&s2.tree));
    let mut entries: Vec<(f64, usize, usize)> = Vec::with_capacity(leaves1.len() * leaves2.len());
    for &s in &leaves1 {
        for &t in &leaves2 {
            entries.push((res.wsim.get(s, t), s, t));
        }
    }
    entries.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.cmp(&b.1))
            .then(a.2.cmp(&b.2))
    });
    entries.truncate(top_k);
    let top_pairs = entries
        .into_iter()
        .map(|(wsim, s, t)| SimilarityEntry {
            source_path: s1.tree.path(NodeId::from_index(s)).to_string(),
            target_path: s2.tree.path(NodeId::from_index(t)).to_string(),
            wsim,
        })
        .collect();

    MatchSummary {
        source,
        target,
        leaf_mappings: leaf,
        nonleaf_mappings: nonleaf,
        top_pairs,
        compared_pairs: pair.compared_pairs,
        total_pairs: pair.total_pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cupid;
    use cupid_lexical::ThesaurusBuilder;
    use cupid_model::{DataType, ElementKind, SchemaBuilder};

    fn thesaurus() -> Thesaurus {
        ThesaurusBuilder::new()
            .abbreviation("Qty", &["quantity"])
            .synonym("Invoice", "Bill", 1.0)
            .build()
            .unwrap()
    }

    fn schema(name: &str, container: &str, fields: &[(&str, DataType)]) -> Schema {
        let mut b = SchemaBuilder::new(name);
        let c = b.structured(b.root(), container, ElementKind::XmlElement);
        for (f, dt) in fields {
            b.atomic(c, *f, ElementKind::XmlElement, *dt);
        }
        b.build().unwrap()
    }

    fn corpus() -> Vec<Schema> {
        vec![
            schema("S0", "Item", &[("Qty", DataType::Int), ("Invoice", DataType::String)]),
            schema("S1", "Item", &[("Quantity", DataType::Int), ("Bill", DataType::String)]),
            schema("S2", "Order", &[("Quantity", DataType::Int)]),
            schema("S3", "Thing", &[("Unrelated", DataType::Date)]),
        ]
    }

    #[test]
    fn session_matches_single_pair_api() {
        let cfg = CupidConfig::default();
        let th = thesaurus();
        let corpus = corpus();
        let mut session = MatchSession::new(&cfg, &th).threads(1);
        let ids = session.add_corpus(&corpus).unwrap();
        let summary = session.match_pair(ids[0], ids[1]);
        let outcome = Cupid::with_config(cfg.clone(), th.clone())
            .match_schemas(&corpus[0], &corpus[1])
            .unwrap();
        assert_eq!(summary.leaf_mappings, outcome.leaf_mappings);
        assert_eq!(summary.nonleaf_mappings, outcome.nonleaf_mappings);
        assert_eq!(summary.compared_pairs, outcome.linguistic.compared_pairs);
        assert!(summary.has_leaf_mapping("S0.Item.Qty", "S1.Item.Quantity"));
    }

    #[test]
    fn all_pairs_order_and_count() {
        let cfg = CupidConfig::default();
        let th = thesaurus();
        let corpus = corpus();
        let mut session = MatchSession::new(&cfg, &th).threads(1);
        session.add_corpus(&corpus).unwrap();
        let summaries = session.match_all_pairs();
        assert_eq!(summaries.len(), 6);
        let pairs: Vec<(usize, usize)> =
            summaries.iter().map(|s| (s.source.index(), s.target.index())).collect();
        assert_eq!(pairs, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let stats = session.stats();
        assert_eq!(stats.pairs_matched, 6);
        assert_eq!(stats.schemas, 4);
        assert!(stats.vocab_size > 0);
        assert!(stats.distinct_pairs_computed > 0);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let cfg = CupidConfig::default();
        let th = thesaurus();
        let corpus = corpus();
        let run = |threads: usize| {
            let mut session = MatchSession::new(&cfg, &th).threads(threads);
            session.add_corpus(&corpus).unwrap();
            session.match_all_pairs()
        };
        let sequential = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), sequential, "threads = {threads}");
        }
    }

    #[test]
    fn session_memo_carries_across_pairs() {
        let cfg = CupidConfig::default();
        let th = thesaurus();
        let corpus = corpus();
        let mut session = MatchSession::new(&cfg, &th).threads(1);
        let ids = session.add_corpus(&corpus).unwrap();
        session.match_pair(ids[0], ids[1]);
        let after_first = session.stats().distinct_pairs_computed;
        session.match_pair(ids[0], ids[1]);
        assert_eq!(
            session.stats().distinct_pairs_computed,
            after_first,
            "a repeated pair must be answered entirely from the memo"
        );
    }

    #[test]
    fn incremental_add_keeps_store_valid() {
        let cfg = CupidConfig::default();
        let th = thesaurus();
        let corpus = corpus();
        let mut session = MatchSession::new(&cfg, &th).threads(1);
        let a = session.add(&corpus[0]).unwrap();
        let b = session.add(&corpus[1]).unwrap();
        let before = session.match_pair(a, b);
        // Growing the vocabulary after matching must not invalidate the
        // warm memo: the same pair still produces identical output.
        let c = session.add(&corpus[2]).unwrap();
        let again = session.match_pair(a, b);
        assert_eq!(before, again);
        let cross = session.match_pair(b, c);
        assert!(cross.has_leaf_mapping("S1.Item.Quantity", "S2.Order.Quantity"));
    }

    #[test]
    fn shared_match_is_bit_identical_and_absorbable() {
        let cfg = CupidConfig::default();
        let th = thesaurus();
        let corpus = corpus();
        let mut session = MatchSession::new(&cfg, &th).threads(1);
        let ids = session.add_corpus(&corpus).unwrap();
        let want = session.match_pair(ids[0], ids[1]);
        let computed_after_exclusive = session.stats().distinct_pairs_computed;

        // The shared path answers through `&self`, bit for bit, from
        // many threads at once.
        let (a, b) = (ids[0], ids[1]);
        std::thread::scope(|scope| {
            let session = &session;
            let workers: Vec<_> =
                (0..3).map(|_| scope.spawn(move || session.match_pair_shared(a, b).0)).collect();
            for w in workers {
                assert_eq!(w.join().unwrap(), want);
            }
        });
        // ...without touching the session's own memo or counters...
        assert_eq!(session.stats().distinct_pairs_computed, computed_after_exclusive);
        assert_eq!(session.stats().pairs_matched, 1);

        // ...and absorbing a warmed clone merges the memo and credits
        // the execution.
        let (summary, store) = session.match_pair_shared(ids[1], ids[2]);
        session.absorb(store, 1);
        assert_eq!(session.stats().pairs_matched, 2);
        assert_eq!(session.match_pair(ids[1], ids[2]), summary);
    }

    #[test]
    fn lsim_of_matches_analyze() {
        let cfg = CupidConfig::default();
        let th = thesaurus();
        let corpus = corpus();
        let mut session = MatchSession::new(&cfg, &th).threads(1);
        let ids = session.add_corpus(&corpus).unwrap();
        for (i, j) in [(0, 1), (1, 2), (2, 3)] {
            let got = session.lsim_of(ids[i], ids[j]);
            let want = crate::linguistic::analyze(&corpus[i], &corpus[j], &th, &cfg);
            assert_eq!(got.matrix().max_abs_diff(want.lsim.matrix()), 0.0, "pair ({i}, {j})");
        }
    }

    #[test]
    fn top_pairs_are_sorted_and_capped() {
        let cfg = CupidConfig::default();
        let th = thesaurus();
        let corpus = corpus();
        let mut session = MatchSession::new(&cfg, &th).threads(1).top_k(2);
        let ids = session.add_corpus(&corpus).unwrap();
        let s = session.match_pair(ids[0], ids[1]);
        assert_eq!(s.top_pairs.len(), 2);
        assert!(s.top_pairs[0].wsim >= s.top_pairs[1].wsim);
        assert_eq!(s.best_wsim(), s.top_pairs[0].wsim);
    }

    #[test]
    fn failed_add_corpus_leaves_session_untouched() {
        use cupid_model::ElementKind;
        // A schema whose expansion fails: recursive type definition.
        let mut b = SchemaBuilder::new("Bad");
        let part = b.type_def("Part");
        let sub = b.structured(part, "SubPart", ElementKind::XmlElement);
        b.derive_from(sub, part);
        let e = b.structured(b.root(), "Root", ElementKind::XmlElement);
        b.derive_from(e, part);
        let bad = b.build().unwrap();

        let cfg = CupidConfig::default();
        let th = thesaurus();
        let mut batch = corpus();
        batch.push(bad);
        let mut session = MatchSession::new(&cfg, &th).threads(1);
        assert!(session.add_corpus(&batch).is_err());
        // All-or-nothing: the good schemas were not half-added, so a
        // retry with the fixed corpus starts clean.
        assert!(session.is_empty());
        assert_eq!(session.stats().vocab_size, 0);
        let ids = session.add_corpus(&batch[..4]).unwrap();
        assert_eq!(ids.len(), 4);
        assert_eq!(session.len(), 4);
    }

    #[test]
    fn prepared_schema_and_summary_wire_round_trip() {
        let cfg = CupidConfig::default();
        let th = thesaurus();
        let corpus = corpus();
        let mut session = MatchSession::new(&cfg, &th).threads(1);
        let ids = session.add_corpus(&corpus).unwrap();
        let summary = session.match_pair(ids[0], ids[1]);
        let vocab = session.stats().vocab_size;

        let prepared = session.schema(ids[0]);
        let mut w = WireWriter::new();
        prepared.write_wire(&mut w);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let back = PreparedSchema::read_wire(&mut r, vocab).unwrap();
        r.finish().unwrap();
        assert_eq!(back.name, prepared.name);
        assert_eq!(back.tree.len(), prepared.tree.len());
        assert_eq!(back.ling.names, prepared.ling.names);

        let mut w = WireWriter::new();
        summary.write_wire(&mut w);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let back = MatchSummary::read_wire(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, summary);
    }

    #[test]
    fn imported_prepared_schema_matches_bit_identically() {
        // Round-trip *every* prepared schema plus the table and store,
        // rebuild a session from the parts, and check a pair executes
        // to the exact same summary — the snapshot bit-identity
        // argument in miniature (DESIGN.md §8).
        let cfg = CupidConfig::default();
        let th = thesaurus();
        let corpus = corpus();
        let mut session = MatchSession::new(&cfg, &th).threads(1);
        let ids = session.add_corpus(&corpus).unwrap();
        let want: Vec<MatchSummary> = session.match_all_pairs();
        let vocab = session.stats().vocab_size;

        let (table, store, schemas) = session.into_parts();
        let mut w = WireWriter::new();
        table.write_wire(&mut w);
        store.write_wire(&mut w);
        w.put_len(schemas.len());
        for s in &schemas {
            s.write_wire(&mut w);
        }
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let table2 = cupid_lexical::TokenTable::read_wire(&mut r).unwrap();
        let store2 = SimStore::read_wire(&mut r).unwrap();
        let n = r.get_len().unwrap();
        let schemas2: Vec<PreparedSchema> =
            (0..n).map(|_| PreparedSchema::read_wire(&mut r, vocab).unwrap()).collect();
        r.finish().unwrap();

        let mut session = MatchSession::from_parts(&cfg, &th, table2, store2, schemas2).threads(1);
        let got = session.match_all_pairs();
        assert_eq!(got, want);
        assert_eq!(
            session.stats().distinct_pairs_computed,
            store.distinct_pairs_computed(),
            "a warm store answers every repeated pair without recomputing"
        );
        let _ = ids;
    }

    #[test]
    fn replace_reprepares_in_place() {
        let cfg = CupidConfig::default();
        let th = thesaurus();
        let corpus = corpus();
        let mut session = MatchSession::new(&cfg, &th).threads(1);
        let ids = session.add_corpus(&corpus).unwrap();
        let before = session.match_pair(ids[0], ids[1]);
        let edited =
            schema("S1", "Item", &[("Quantity", DataType::Int), ("Total", DataType::Money)]);
        session.replace(ids[1], &edited).unwrap();
        let after = session.match_pair(ids[0], ids[1]);
        assert_ne!(before, after);
        assert!(after.has_leaf_mapping("S0.Item.Qty", "S1.Item.Quantity"));
        // Untouched pairs still match exactly as a fresh session would.
        let cross = session.match_pair(ids[2], ids[3]);
        let mut fresh = MatchSession::new(&cfg, &th).threads(1);
        let fids = fresh.add_corpus(&corpus).unwrap();
        let want = fresh.match_pair(fids[2], fids[3]);
        assert_eq!(cross.leaf_mappings, want.leaf_mappings);
    }

    #[test]
    fn remove_shifts_later_ids() {
        let cfg = CupidConfig::default();
        let th = thesaurus();
        let corpus = corpus();
        let mut session = MatchSession::new(&cfg, &th).threads(1);
        let ids = session.add_corpus(&corpus).unwrap();
        let removed = session.remove(ids[1]);
        assert_eq!(removed.name, "S1");
        assert_eq!(session.len(), 3);
        assert_eq!(session.schema(SchemaId::from_index(1)).name, "S2");
        // The surviving schemas still match (table/store untouched).
        let s = session.match_pair(SchemaId::from_index(1), SchemaId::from_index(2));
        assert_eq!(s.total_pairs, corpus[2].len() * corpus[3].len());
    }

    #[test]
    fn empty_worklist_is_fine() {
        let cfg = CupidConfig::default();
        let th = thesaurus();
        let mut session = MatchSession::new(&cfg, &th);
        assert!(session.is_empty());
        assert!(session.match_all_pairs().is_empty());
        assert_eq!(session.stats().pairs_matched, 0);
    }
}
