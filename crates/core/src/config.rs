//! Cupid's thresholds and control parameters (Table 1 of the paper).
//!
//! The defaults are exactly the "Typical Value" column of Table 1; every
//! knob is public and documented with the paper's own description of how
//! it should be set.

use cupid_lexical::strsim::AffixConfig;
use cupid_lexical::TokenType;
use cupid_model::ExpandOptions;

use crate::types_compat::TypeCompatibility;

/// Per-token-type weights for the element-level name similarity (§5.3):
/// *"Content and concept tokens are assigned a greater weight (wi) since
/// these token types are more relevant than numbers and conjunctions,
/// prepositions, etc."*
///
/// The weights are relative; the name-similarity formula normalizes by
/// the weighted token mass, so they need not sum to 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TokenTypeWeights {
    /// Weight of `Content` tokens.
    pub content: f64,
    /// Weight of `Concept` tokens.
    pub concept: f64,
    /// Weight of `Number` tokens.
    pub number: f64,
    /// Weight of `SpecialSymbol` tokens.
    pub special: f64,
    /// Weight of `CommonWord` tokens. Zero reproduces the "marked to be
    /// ignored during comparison" behaviour of §5.1.
    pub common: f64,
}

impl Default for TokenTypeWeights {
    fn default() -> Self {
        TokenTypeWeights { content: 1.0, concept: 1.0, number: 0.5, special: 0.25, common: 0.0 }
    }
}

impl TokenTypeWeights {
    /// Weight for a token type.
    #[inline]
    pub fn weight(&self, t: TokenType) -> f64 {
        match t {
            TokenType::Number => self.number,
            TokenType::SpecialSymbol => self.special,
            TokenType::CommonWord => self.common,
            TokenType::Concept => self.concept,
            TokenType::Content => self.content,
        }
    }
}

/// All control parameters of the Cupid algorithm. Defaults follow
/// Table 1.
#[derive(Debug, Clone)]
pub struct CupidConfig {
    /// `thns` — name-similarity threshold for determining compatible
    /// categories. *"The choice of value is not critical, as it is used
    /// merely for pruning the number of element-to-element linguistic
    /// comparisons."* (Table 1: 0.5)
    pub th_ns: f64,
    /// `thhigh` — if `wsim(s,t) ≥ thhigh` the structural similarity of all
    /// leaf pairs under `s` and `t` is increased. *"Should be greater than
    /// thaccept."* (Table 1: 0.6)
    pub th_high: f64,
    /// `thlow` — if `wsim(s,t) ≤ thlow` the structural similarity of leaf
    /// pairs is decreased. *"Should be less than thaccept."* (Table 1:
    /// 0.35)
    pub th_low: f64,
    /// `cinc` — multiplicative increase factor for leaf structural
    /// similarities. *"Typically a function of maximum schema depth."*
    /// (Table 1: 1.2)
    pub c_inc: f64,
    /// `cdec` — multiplicative decrease factor, *"typically about
    /// cinc⁻¹"*. (Table 1: 0.9)
    pub c_dec: f64,
    /// `thaccept` — `wsim(s,t) ≥ thaccept` for a strong link or a valid
    /// mapping element. (Table 1: 0.5)
    pub th_accept: f64,
    /// `wstruct` for non-leaf pairs — structural contribution to `wsim`.
    /// (Table 1: 0.5–0.6, *"lower for leaf-leaf pairs than for non-leaf
    /// pairs"*; default 0.6)
    pub w_struct: f64,
    /// `wstruct` for leaf-leaf pairs. (default 0.5)
    pub w_struct_leaf: f64,
    /// Leaf-count pruning (§6): only compare elements whose subtree leaf
    /// counts are *"within a factor of 2"*. `None` disables pruning.
    pub leaf_ratio_prune: Option<f64>,
    /// §8.4 "Pruning leaves": consider only leaves within depth `k` of the
    /// node being compared. `None` uses full leaf sets.
    pub leaf_depth_limit: Option<u32>,
    /// §8.4 "Optionality": drop optional leaves with no strong links from
    /// both numerator and denominator of `ssim`.
    pub use_optionality: bool,
    /// Linguistic similarity assigned to pairs named in a user-supplied
    /// initial mapping (§8.4: *"initialized to a predefined maximum
    /// value"*).
    pub initial_mapping_lsim: f64,
    /// Per-token-type weights for name similarity (§5.3).
    pub token_weights: TokenTypeWeights,
    /// Affix (substring) matching fallback parameters (§5.2).
    pub affix: AffixConfig,
    /// Data-type compatibility table (§6).
    pub type_compat: TypeCompatibility,
    /// Schema expansion options: join-view/view reification (§8.3, §8.4).
    pub expand: ExpandOptions,
}

impl Default for CupidConfig {
    fn default() -> Self {
        CupidConfig {
            th_ns: 0.5,
            th_high: 0.6,
            th_low: 0.35,
            c_inc: 1.2,
            c_dec: 0.9,
            th_accept: 0.5,
            w_struct: 0.6,
            w_struct_leaf: 0.5,
            leaf_ratio_prune: Some(2.0),
            leaf_depth_limit: None,
            use_optionality: true,
            initial_mapping_lsim: 1.0,
            token_weights: TokenTypeWeights::default(),
            affix: AffixConfig::default(),
            type_compat: TypeCompatibility::default(),
            expand: ExpandOptions::all(),
        }
    }
}

impl CupidConfig {
    /// Deterministic 64-bit fingerprint of every control parameter —
    /// thresholds and factors by exact bit pattern, token weights,
    /// affix and type-compatibility tables, expansion options. Two
    /// configs with the same fingerprint produce bit-identical match
    /// results on the same inputs, so the repository stores this next
    /// to each snapshot and treats any mismatch as "the persisted memo
    /// and pair cache are for a different matcher" (DESIGN.md §8).
    pub fn fingerprint(&self) -> u64 {
        let mut w = cupid_model::WireWriter::new();
        // Layout version: bump when fields are added/reordered so old
        // fingerprints can never collide with new ones by accident.
        w.put_u32(1);
        for v in [
            self.th_ns,
            self.th_high,
            self.th_low,
            self.c_inc,
            self.c_dec,
            self.th_accept,
            self.w_struct,
            self.w_struct_leaf,
            self.initial_mapping_lsim,
        ] {
            w.put_f64(v);
        }
        match self.leaf_ratio_prune {
            Some(r) => {
                w.put_bool(true);
                w.put_f64(r);
            }
            None => w.put_bool(false),
        }
        match self.leaf_depth_limit {
            Some(k) => {
                w.put_bool(true);
                w.put_u32(k);
            }
            None => w.put_bool(false),
        }
        w.put_bool(self.use_optionality);
        for v in [
            self.token_weights.content,
            self.token_weights.concept,
            self.token_weights.number,
            self.token_weights.special,
            self.token_weights.common,
        ] {
            w.put_f64(v);
        }
        w.put_u32(self.affix.min_affix_len as u32);
        w.put_f64(self.affix.max_score);
        self.type_compat.fingerprint_into(&mut w);
        w.put_bool(self.expand.join_views);
        w.put_bool(self.expand.views);
        cupid_model::fnv1a(w.bytes())
    }

    /// The `wstruct` to use for a pair, depending on whether both sides
    /// are leaves.
    #[inline]
    pub fn w_struct_for(&self, both_leaves: bool) -> f64 {
        if both_leaves {
            self.w_struct_leaf
        } else {
            self.w_struct
        }
    }

    /// Validate the threshold ordering invariants stated in Table 1:
    /// `thlow < thaccept ≤ thhigh`, factors positive, weights in `[0,1]`.
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let in01 = |name: &str, v: f64| -> Result<(), String> {
            if (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(format!("{name} = {v} outside [0,1]"))
            }
        };
        in01("th_ns", self.th_ns)?;
        in01("th_high", self.th_high)?;
        in01("th_low", self.th_low)?;
        in01("th_accept", self.th_accept)?;
        in01("w_struct", self.w_struct)?;
        in01("w_struct_leaf", self.w_struct_leaf)?;
        in01("initial_mapping_lsim", self.initial_mapping_lsim)?;
        if self.th_high < self.th_accept {
            return Err(format!(
                "th_high ({}) should be ≥ th_accept ({})",
                self.th_high, self.th_accept
            ));
        }
        if self.th_low >= self.th_accept {
            return Err(format!(
                "th_low ({}) should be < th_accept ({})",
                self.th_low, self.th_accept
            ));
        }
        if self.c_inc < 1.0 {
            return Err(format!("c_inc ({}) should be ≥ 1", self.c_inc));
        }
        if !(0.0..=1.0).contains(&self.c_dec) {
            return Err(format!("c_dec ({}) should be in [0,1]", self.c_dec));
        }
        if let Some(r) = self.leaf_ratio_prune {
            if r < 1.0 {
                return Err(format!("leaf_ratio_prune ({r}) should be ≥ 1"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_1() {
        let c = CupidConfig::default();
        assert_eq!(c.th_ns, 0.5);
        assert_eq!(c.th_high, 0.6);
        assert_eq!(c.th_low, 0.35);
        assert_eq!(c.c_inc, 1.2);
        assert_eq!(c.c_dec, 0.9);
        assert_eq!(c.th_accept, 0.5);
        assert_eq!(c.w_struct, 0.6);
        assert_eq!(c.w_struct_leaf, 0.5);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn w_struct_lower_for_leaves() {
        let c = CupidConfig::default();
        assert!(c.w_struct_for(true) <= c.w_struct_for(false));
    }

    #[test]
    fn validate_catches_threshold_inversions() {
        let mut c = CupidConfig::default();
        c.th_high = 0.4; // below th_accept
        assert!(c.validate().is_err());

        let mut c = CupidConfig::default();
        c.th_low = 0.7; // above th_accept
        assert!(c.validate().is_err());

        let mut c = CupidConfig::default();
        c.c_inc = 0.5;
        assert!(c.validate().is_err());

        let mut c = CupidConfig::default();
        c.leaf_ratio_prune = Some(0.5);
        assert!(c.validate().is_err());
    }

    #[test]
    fn fingerprint_tracks_every_knob() {
        let base = CupidConfig::default().fingerprint();
        assert_eq!(base, CupidConfig::default().fingerprint(), "fingerprint is deterministic");
        let mut c = CupidConfig::default();
        c.th_accept = 0.55;
        assert_ne!(c.fingerprint(), base);
        let mut c = CupidConfig::default();
        c.leaf_depth_limit = Some(3);
        assert_ne!(c.fingerprint(), base);
        let mut c = CupidConfig::default();
        c.token_weights.number = 0.75;
        assert_ne!(c.fingerprint(), base);
        let mut c = CupidConfig::default();
        c.affix.min_affix_len = 4;
        assert_ne!(c.fingerprint(), base);
        let mut c = CupidConfig::default();
        c.type_compat.set_override(cupid_model::DataType::Int, cupid_model::DataType::Money, 0.45);
        assert_ne!(c.fingerprint(), base);
        let mut c = CupidConfig::default();
        c.expand = ExpandOptions::none();
        assert_ne!(c.fingerprint(), base);
    }

    #[test]
    fn common_word_weight_zero_by_default() {
        let w = TokenTypeWeights::default();
        assert_eq!(w.weight(TokenType::CommonWord), 0.0);
        assert!(w.weight(TokenType::Content) > w.weight(TokenType::Number));
    }
}
