//! The TreeMatch structure-matching algorithm (§6, Figure 3).
//!
//! ```text
//! TreeMatch(SourceTree S, TargetTree T)
//!   for each s ∈ S, t ∈ T where s,t are leaves
//!     set ssim(s,t) = datatype-compatibility(s,t)
//!   S' = post-order(S), T' = post-order(T)
//!   for each s in S'
//!     for each t in T'
//!       compute ssim(s,t) = structural-similarity(s,t)
//!       wsim(s,t) = wstruct·ssim(s,t) + (1−wstruct)·lsim(s,t)
//!       if wsim(s,t) > thhigh
//!         increase-struct-similarity(leaves(s), leaves(t), cinc)
//!       if wsim(s,t) < thlow
//!         decrease-struct-similarity(leaves(s), leaves(t), cdec)
//! ```
//!
//! The structural similarity of two non-leaf elements is the fraction of
//! leaves in the two subtrees with at least one *strong link* (a leaf pair
//! whose weighted similarity exceeds `thaccept`) to the other subtree.
//! The paper deliberately avoids a 1:1 bipartite matching here (§6).
//!
//! Strong-link membership is tracked with per-leaf bitsets so the test
//! *"does leaf x link into subtree t?"* is a word-wise intersection.

use cupid_model::{NodeId, SchemaTree};

use crate::bitset::Bits;
use crate::config::CupidConfig;
use crate::linguistic::LsimTable;
use crate::simmatrix::SimMatrix;

/// Counters describing a TreeMatch run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TreeMatchStats {
    /// Node pairs whose structural similarity was computed.
    pub compared_pairs: usize,
    /// Node pairs skipped by the leaf-count ratio pruning.
    pub pruned_pairs: usize,
    /// Number of `increase-struct-similarity` invocations.
    pub increases: usize,
    /// Number of `decrease-struct-similarity` invocations.
    pub decreases: usize,
    /// Node-pair computations skipped by lazy-expansion block copying.
    pub lazy_copied_pairs: usize,
}

/// Result of a TreeMatch run, with the recomputed final similarities used
/// for mapping generation (§7's *"second post-order traversal … to
/// re-compute the similarities of non-leaf elements"*).
#[derive(Debug, Clone)]
pub struct TreeMatchResult {
    /// Final structural similarity of leaf pairs (`leaf₁ × leaf₂`,
    /// indexed by leaf indices).
    pub leaf_ssim: SimMatrix,
    /// Final (recomputed) structural similarity per node pair.
    pub ssim: SimMatrix,
    /// Final weighted similarity per node pair.
    pub wsim: SimMatrix,
    /// Run counters.
    pub stats: TreeMatchStats,
}

/// Shared state of a TreeMatch run. `pub(crate)` so the lazy-expansion
/// driver ([`crate::lazy`]) can reuse the exact same primitives.
pub(crate) struct Workspace<'a> {
    pub t1: &'a SchemaTree,
    pub t2: &'a SchemaTree,
    pub lsim: &'a LsimTable,
    pub cfg: &'a CupidConfig,
    /// `lsim` cached per leaf pair.
    pub leaf_lsim: SimMatrix,
    /// Mutable structural similarity per leaf pair.
    pub leaf_ssim: SimMatrix,
    /// strong_rows[x] = bitset over target leaves y with strong link.
    pub strong_rows: Vec<Bits>,
    /// strong_cols[y] = bitset over source leaves x with strong link.
    pub strong_cols: Vec<Bits>,
    /// Per source node: leaf bitset used for ssim counting (possibly
    /// depth-limited).
    pub masks1: Vec<Bits>,
    /// Per target node: ditto.
    pub masks2: Vec<Bits>,
    /// Popcount of `masks1[i]`, hoisted out of `structural_sim` (the
    /// masks are immutable after construction, and the counts are
    /// re-read for every node pair of the O(n²) main loop).
    pub mask1_count: Vec<usize>,
    /// Popcount of `masks2[j]`, ditto.
    pub mask2_count: Vec<usize>,
    /// Per source node: required-leaf bitset (§8.4 optionality).
    pub req1: Vec<Bits>,
    /// Per target node: ditto.
    pub req2: Vec<Bits>,
    /// Main-pass node similarities.
    pub node_ssim: SimMatrix,
    pub node_wsim: SimMatrix,
    pub stats: TreeMatchStats,
}

fn leaf_masks(tree: &SchemaTree, depth_limit: Option<u32>) -> Vec<Bits> {
    let nl = tree.leaf_count();
    (0..tree.len())
        .map(|i| {
            let id = NodeId::from_index(i);
            match depth_limit {
                None => Bits::from_indices(nl, tree.leaves(id)),
                Some(k) => {
                    // Leaves within k levels of the node (§8.4 "Pruning
                    // leaves"). Internal frontier nodes at depth k simply
                    // cut deeper leaves off.
                    let mut b = Bits::new(nl);
                    for f in tree.frontier_at_depth(id, k) {
                        if let Some(li) = tree.leaf_index(f) {
                            b.set(li as usize);
                        }
                    }
                    b
                }
            }
        })
        .collect()
}

fn required_masks(tree: &SchemaTree) -> Vec<Bits> {
    let nl = tree.leaf_count();
    (0..tree.len())
        .map(|i| Bits::from_indices(nl, tree.required_leaves(NodeId::from_index(i))))
        .collect()
}

impl<'a> Workspace<'a> {
    pub fn new(
        t1: &'a SchemaTree,
        t2: &'a SchemaTree,
        lsim: &'a LsimTable,
        cfg: &'a CupidConfig,
    ) -> Self {
        let (nl1, nl2) = (t1.leaf_count(), t2.leaf_count());
        let mut leaf_lsim = SimMatrix::zeros(nl1, nl2);
        let mut leaf_ssim = SimMatrix::zeros(nl1, nl2);
        for x in 0..nl1 {
            let nx = t1.node(t1.leaf_node(x as u32));
            for y in 0..nl2 {
                let ny = t2.node(t2.leaf_node(y as u32));
                leaf_lsim.set(x, y, lsim.get(nx.element, ny.element));
                leaf_ssim.set(x, y, cfg.type_compat.compat(nx.data_type, ny.data_type));
            }
        }
        let masks1 = leaf_masks(t1, cfg.leaf_depth_limit);
        let masks2 = leaf_masks(t2, cfg.leaf_depth_limit);
        let mask1_count = masks1.iter().map(Bits::count).collect();
        let mask2_count = masks2.iter().map(Bits::count).collect();
        let mut ws = Workspace {
            t1,
            t2,
            lsim,
            cfg,
            leaf_lsim,
            leaf_ssim,
            strong_rows: vec![Bits::new(nl2); nl1],
            strong_cols: vec![Bits::new(nl1); nl2],
            masks1,
            masks2,
            mask1_count,
            mask2_count,
            req1: required_masks(t1),
            req2: required_masks(t2),
            node_ssim: SimMatrix::zeros(t1.len(), t2.len()),
            node_wsim: SimMatrix::zeros(t1.len(), t2.len()),
            stats: TreeMatchStats::default(),
        };
        for x in 0..nl1 {
            for y in 0..nl2 {
                ws.refresh_strong(x, y);
            }
        }
        ws
    }

    /// Weighted similarity of a leaf pair: `w_struct_leaf·ssim +
    /// (1−w_struct_leaf)·lsim`.
    #[inline]
    pub fn leaf_wsim(&self, x: usize, y: usize) -> f64 {
        let w = self.cfg.w_struct_leaf;
        w * self.leaf_ssim.get(x, y) + (1.0 - w) * self.leaf_lsim.get(x, y)
    }

    /// Recompute the strong-link flag for a leaf pair. A *strong link*
    /// means `wsim(x,y) ≥ thaccept` — a potentially acceptable mapping.
    /// Bitset writes are skipped when the flag does not change (the
    /// common case during reinforcement).
    #[inline]
    pub fn refresh_strong(&mut self, x: usize, y: usize) {
        let strong = self.leaf_wsim(x, y) >= self.cfg.th_accept;
        if self.strong_rows[x].get(y) != strong {
            if strong {
                self.strong_rows[x].set(y);
                self.strong_cols[y].set(x);
            } else {
                self.strong_rows[x].clear(y);
                self.strong_cols[y].clear(x);
            }
        }
    }

    /// `increase-/decrease-struct-similarity(leaves(s), leaves(t), f)`:
    /// scale the structural similarity of every leaf pair under the two
    /// nodes (clamped to `[0,1]`), refreshing strong links.
    ///
    /// `wsim` is monotone in `leaf_ssim` (`w_struct_leaf ≥ 0`), so an
    /// increase (`factor ≥ 1`) can only turn a weak link strong and a
    /// decrease can only turn a strong link weak — pairs already on the
    /// unreachable side skip the `wsim` recomputation entirely.
    pub fn scale_leaves(&mut self, s: NodeId, t: NodeId, factor: f64) {
        // Updates always use the *full* leaf sets of the subtrees, even if
        // ssim counting is depth-limited.
        let ls = self.t1.leaves(s);
        let lt = self.t2.leaves(t);
        let increasing = factor >= 1.0;
        for &x in ls {
            for &y in lt {
                self.leaf_ssim.scale_clamped(x as usize, y as usize, factor);
                if self.strong_rows[x as usize].get(y as usize) != increasing {
                    self.refresh_strong(x as usize, y as usize);
                }
            }
        }
    }

    /// Leaf-count ratio pruning (§6): skip pairs whose subtree leaf counts
    /// differ by more than the configured factor.
    #[inline]
    pub fn pruned(&self, s: NodeId, t: NodeId) -> bool {
        let Some(r) = self.cfg.leaf_ratio_prune else { return false };
        let a = self.t1.leaves(s).len() as f64;
        let b = self.t2.leaves(t).len() as f64;
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        hi > r * lo
    }

    /// Structural similarity of a node pair (the strong-link fraction).
    /// For a leaf pair this is the current leaf `ssim` entry.
    pub fn structural_sim(&self, s: NodeId, t: NodeId) -> f64 {
        if let (Some(x), Some(y)) = (self.t1.leaf_index(s), self.t2.leaf_index(t)) {
            return self.leaf_ssim.get(x as usize, y as usize);
        }
        let m1 = &self.masks1[s.index()];
        let m2 = &self.masks2[t.index()];
        let mut num = 0usize;
        let mut den = self.mask1_count[s.index()] + self.mask2_count[t.index()];
        for x in m1.ones() {
            if self.strong_rows[x].intersects(m2) {
                num += 1;
            } else if self.cfg.use_optionality && !self.req1[s.index()].get(x) {
                den -= 1; // optional leaf with no strong link: dropped
            }
        }
        for y in m2.ones() {
            if self.strong_cols[y].intersects(m1) {
                num += 1;
            } else if self.cfg.use_optionality && !self.req2[t.index()].get(y) {
                den -= 1;
            }
        }
        if den == 0 {
            0.0
        } else {
            num as f64 / den as f64
        }
    }

    /// One iteration of the inner loop body of Figure 3 for the pair
    /// `(s, t)`.
    pub fn process_pair(&mut self, s: NodeId, t: NodeId) {
        let both_leaves = self.t1.is_leaf(s) && self.t2.is_leaf(t);
        if !both_leaves && self.pruned(s, t) {
            self.stats.pruned_pairs += 1;
            return;
        }
        let ssim = self.structural_sim(s, t);
        let w = self.cfg.w_struct_for(both_leaves);
        let lsim = self.lsim.get(self.t1.node(s).element, self.t2.node(t).element);
        let wsim = w * ssim + (1.0 - w) * lsim;
        self.node_ssim.set(s.index(), t.index(), ssim);
        self.node_wsim.set(s.index(), t.index(), wsim);
        self.stats.compared_pairs += 1;
        // Figure 3 uses strict inequalities; the strictness matters: a
        // structurally-perfect but linguistically-unsupported pair lands
        // exactly on wstruct·1.0 = th_high and must *not* be reinforced,
        // otherwise wrong contexts (POBillTo vs DeliverTo) get boosted.
        if wsim > self.cfg.th_high {
            self.scale_leaves(s, t, self.cfg.c_inc);
            self.stats.increases += 1;
        } else if wsim < self.cfg.th_low {
            self.scale_leaves(s, t, self.cfg.c_dec);
            self.stats.decreases += 1;
        }
    }

    /// The eager main pass: both loops in post-order. The orders are
    /// borrowed straight from the trees (which outlive `self`), not
    /// cloned per run.
    pub fn run_main_pass(&mut self) {
        let order1 = self.t1.post_order();
        let order2 = self.t2.post_order();
        for &s in order1 {
            for &t in order2 {
                self.process_pair(s, t);
            }
        }
    }

    /// The mapping-stage recomputation (§7): with leaf similarities now
    /// final, recompute `ssim`/`wsim` for every pair (no more updates).
    pub fn final_matrices(&self) -> (SimMatrix, SimMatrix) {
        let mut ssim = SimMatrix::zeros(self.t1.len(), self.t2.len());
        let mut wsim = SimMatrix::zeros(self.t1.len(), self.t2.len());
        for (s, ns) in self.t1.iter() {
            for (t, nt) in self.t2.iter() {
                let both_leaves = ns.is_leaf() && nt.is_leaf();
                if !both_leaves && self.pruned(s, t) {
                    continue;
                }
                let sv = self.structural_sim(s, t);
                let w = self.cfg.w_struct_for(both_leaves);
                let lv = self.lsim.get(ns.element, nt.element);
                ssim.set(s.index(), t.index(), sv);
                wsim.set(s.index(), t.index(), w * sv + (1.0 - w) * lv);
            }
        }
        (ssim, wsim)
    }

    pub fn into_result(self) -> TreeMatchResult {
        let (ssim, wsim) = self.final_matrices();
        TreeMatchResult { leaf_ssim: self.leaf_ssim, ssim, wsim, stats: self.stats }
    }
}

/// Run TreeMatch eagerly over two expanded schema trees.
pub fn tree_match(
    t1: &SchemaTree,
    t2: &SchemaTree,
    lsim: &LsimTable,
    cfg: &CupidConfig,
) -> TreeMatchResult {
    let mut ws = Workspace::new(t1, t2, lsim, cfg);
    ws.run_main_pass();
    ws.into_result()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linguistic::analyze;
    use cupid_lexical::{Thesaurus, ThesaurusBuilder};
    use cupid_model::{expand, DataType, ElementKind, ExpandOptions, Schema, SchemaBuilder};

    fn customer(name: &str) -> Schema {
        let mut b = SchemaBuilder::new(name);
        let c = b.structured(b.root(), "Customer", ElementKind::Class);
        b.atomic(c, "CustomerNumber", ElementKind::Attribute, DataType::Int);
        b.atomic(c, "Name", ElementKind::Attribute, DataType::String);
        b.atomic(c, "Address", ElementKind::Attribute, DataType::String);
        b.build().unwrap()
    }

    fn run(s1: &Schema, s2: &Schema, t: &Thesaurus) -> (TreeMatchResult, Vec<String>, Vec<String>) {
        let cfg = CupidConfig::default();
        let tr1 = expand(s1, &ExpandOptions::none()).unwrap();
        let tr2 = expand(s2, &ExpandOptions::none()).unwrap();
        let la = analyze(s1, s2, t, &cfg);
        let res = tree_match(&tr1, &tr2, &la.lsim, &cfg);
        let p1 = tr1.iter().map(|(id, _)| tr1.path(id).to_string()).collect();
        let p2 = tr2.iter().map(|(id, _)| tr2.path(id).to_string()).collect();
        (res, p1, p2)
    }

    #[test]
    fn identical_schemas_leaves_bind() {
        let s1 = customer("Schema1");
        let s2 = customer("Schema2");
        let t = Thesaurus::with_default_stopwords();
        let cfg = CupidConfig::default();
        let tr1 = expand(&s1, &ExpandOptions::none()).unwrap();
        let tr2 = expand(&s2, &ExpandOptions::none()).unwrap();
        let la = analyze(&s1, &s2, &t, &cfg);
        let res = tree_match(&tr1, &tr2, &la.lsim, &cfg);

        // matching leaf pairs end with higher wsim than non-matching.
        let name1 = tr1.find_path("Schema1.Customer.Name").unwrap();
        let name2 = tr2.find_path("Schema2.Customer.Name").unwrap();
        let addr2 = tr2.find_path("Schema2.Customer.Address").unwrap();
        let w_good = res.wsim.get(name1.index(), name2.index());
        let w_bad = res.wsim.get(name1.index(), addr2.index());
        assert!(w_good >= cfg.th_accept, "wsim(Name,Name) = {w_good}");
        assert!(w_bad < w_good, "Name/Address {w_bad} !< Name/Name {w_good}");

        // the Customer classes structurally match
        let c1 = tr1.find_path("Schema1.Customer").unwrap();
        let c2 = tr2.find_path("Schema2.Customer").unwrap();
        assert!(res.ssim.get(c1.index(), c2.index()) > 0.9);
    }

    #[test]
    fn context_binding_via_ancestor_boost() {
        // Figure 2's insight: City under POBillTo must bind to City under
        // InvoiceTo (synonym Bill≈Invoice), not to City under DeliverTo.
        let thesaurus = ThesaurusBuilder::new()
            .synonym("Invoice", "Bill", 1.0)
            .synonym("Ship", "Deliver", 1.0)
            .abbreviation("PO", &["purchase", "order"])
            .build()
            .unwrap();
        let mut b = SchemaBuilder::new("PO");
        for part in ["POShipTo", "POBillTo"] {
            let p = b.structured(b.root(), part, ElementKind::XmlElement);
            b.atomic(p, "Street", ElementKind::XmlElement, DataType::String);
            b.atomic(p, "City", ElementKind::XmlElement, DataType::String);
        }
        let s1 = b.build().unwrap();
        let mut b = SchemaBuilder::new("PurchaseOrder");
        for part in ["DeliverTo", "InvoiceTo"] {
            let p = b.structured(b.root(), part, ElementKind::XmlElement);
            b.atomic(p, "Street", ElementKind::XmlElement, DataType::String);
            b.atomic(p, "City", ElementKind::XmlElement, DataType::String);
        }
        let s2 = b.build().unwrap();

        let cfg = CupidConfig::default();
        let tr1 = expand(&s1, &ExpandOptions::none()).unwrap();
        let tr2 = expand(&s2, &ExpandOptions::none()).unwrap();
        let la = analyze(&s1, &s2, &thesaurus, &cfg);
        let res = tree_match(&tr1, &tr2, &la.lsim, &cfg);

        let bill_city = tr1.find_path("PO.POBillTo.City").unwrap();
        let invoice_city = tr2.find_path("PurchaseOrder.InvoiceTo.City").unwrap();
        let deliver_city = tr2.find_path("PurchaseOrder.DeliverTo.City").unwrap();
        let w_invoice = res.wsim.get(bill_city.index(), invoice_city.index());
        let w_deliver = res.wsim.get(bill_city.index(), deliver_city.index());
        assert!(
            w_invoice > w_deliver,
            "POBillTo.City should bind to InvoiceTo.City ({w_invoice}) over DeliverTo.City ({w_deliver})"
        );
        // and symmetric for ship/deliver
        let ship_city = tr1.find_path("PO.POShipTo.City").unwrap();
        let w_ship_deliver = res.wsim.get(ship_city.index(), deliver_city.index());
        let w_ship_invoice = res.wsim.get(ship_city.index(), invoice_city.index());
        assert!(w_ship_deliver > w_ship_invoice);
    }

    #[test]
    fn leaf_ratio_pruning_skips_lopsided_pairs() {
        let mut b = SchemaBuilder::new("Big");
        let t = b.structured(b.root(), "T", ElementKind::XmlElement);
        for i in 0..10 {
            b.atomic(t, format!("A{i}"), ElementKind::XmlElement, DataType::String);
        }
        let s1 = b.build().unwrap();
        let mut b = SchemaBuilder::new("Small");
        let t = b.structured(b.root(), "T", ElementKind::XmlElement);
        b.atomic(t, "A0", ElementKind::XmlElement, DataType::String);
        let s2 = b.build().unwrap();
        let (res, _, _) = run(&s1, &s2, &Thesaurus::with_default_stopwords());
        assert!(res.stats.pruned_pairs > 0);
    }

    #[test]
    fn optionality_softens_unmatched_optional_leaves() {
        // s1: E{a, b}; s2: E{a, b, c?}. With optionality, unmatched
        // optional c drops from the denominator.
        let build = |with_c: bool, optional: bool| {
            let mut b = SchemaBuilder::new("S");
            let e = b.structured(b.root(), "E", ElementKind::XmlElement);
            b.atomic(e, "Amount", ElementKind::XmlElement, DataType::String);
            b.atomic(e, "Brand", ElementKind::XmlElement, DataType::String);
            if with_c {
                let c = b.atomic(e, "Comment", ElementKind::XmlElement, DataType::String);
                b.set_optional(c, optional);
            }
            b.build().unwrap()
        };
        let s1 = build(false, false);
        let s2_opt = build(true, true);
        let s2_req = build(true, false);
        let thesaurus = Thesaurus::with_default_stopwords();
        let cfg = CupidConfig::default();
        let tr1 = expand(&s1, &ExpandOptions::none()).unwrap();

        let ssim_with = |s2: &Schema| {
            let tr2 = expand(s2, &ExpandOptions::none()).unwrap();
            let la = analyze(&s1, s2, &thesaurus, &cfg);
            let res = tree_match(&tr1, &tr2, &la.lsim, &cfg);
            let e1 = tr1.find_path("S.E").unwrap();
            let e2 = tr2.find_path("S.E").unwrap();
            res.ssim.get(e1.index(), e2.index())
        };
        let with_optional = ssim_with(&s2_opt);
        let with_required = ssim_with(&s2_req);
        assert!(
            with_optional > with_required,
            "optional unmatched leaf should hurt less: {with_optional} vs {with_required}"
        );
        // optional case: 2+2 linked out of (2 + 3 - 1 dropped) = 4/4 = 1.
        assert!((with_optional - 1.0).abs() < 1e-9);
    }

    #[test]
    fn increase_clamps_at_one() {
        let s1 = customer("A");
        let s2 = customer("B");
        let (res, _, _) = run(&s1, &s2, &Thesaurus::with_default_stopwords());
        for (_, _, v) in res.leaf_ssim.iter() {
            assert!((0.0..=1.0).contains(&v), "leaf ssim out of range: {v}");
        }
        assert!(res.stats.increases > 0);
    }

    #[test]
    fn stats_count_compared_pairs() {
        let s1 = customer("A");
        let s2 = customer("B");
        let (res, p1, p2) = run(&s1, &s2, &Thesaurus::with_default_stopwords());
        assert!(res.stats.compared_pairs + res.stats.pruned_pairs == p1.len() * p2.len());
    }
}
