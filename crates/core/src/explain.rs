//! Match explainability (DESIGN.md §14): per-mapping score provenance.
//!
//! A match result reports one `wsim` per mapping, but the paper defines
//! that number as a composition — `wsim = w·ssim + (1−w)·lsim`, with
//! `lsim` itself built from categorized token similarities and `ssim`
//! from leaf-set propagation. This module re-executes one prepared pair
//! with instrumentation and captures the whole decomposition per kept
//! mapping: the score breakdown at the final weights, the top
//! contributing token pairs with their per-pair provenance (thesaurus
//! hit vs affix match), the structural context (leaf-set sizes,
//! strong-link counts, reinforcement passes), and the threshold decision
//! that admitted the mapping.
//!
//! Explanations are produced by a **separate entry point**
//! ([`crate::MatchSession::explain_pair`] /
//! [`explain_pair_shared`](crate::MatchSession::explain_pair_shared));
//! the zero-explain hot path is untouched. Pair execution is a pure
//! function of frozen prepared state, so the re-execution reproduces the
//! exact float operations of the match — the central invariant, asserted
//! end to end, is that every explanation **recomposes to the reported
//! `wsim` bit-exactly** ([`Explanation::recomposes_exactly`]).

use cupid_lexical::{
    class_similarity_explained, Thesaurus, TokenId, TokenSimCache, TokenSimProvenance, TokenTable,
    TokenType,
};
use cupid_model::{NodeId, WireError, WireReader, WireWriter};

use crate::config::CupidConfig;
use crate::linguistic::{ns_elements_ids, ns_token_ids, pair_lsim};
use crate::mapping::{leaf_mappings, nonleaf_mappings, Cardinality, MappingElement};
use crate::session::PreparedSchema;
use crate::treematch::{TreeMatchResult, Workspace};

/// How many top contributing token pairs an explanation keeps per
/// mapping (descending similarity).
pub const TOP_TOKEN_PAIRS: usize = 8;

/// One contributing token pair of a mapping's linguistic score: the two
/// canonical token texts, the token type they were compared under, the
/// memoized similarity, and where that similarity came from.
#[derive(Debug, Clone, PartialEq)]
pub struct TokenPairScore {
    /// Canonical text of the source-side token.
    pub source_token: String,
    /// Canonical text of the target-side token.
    pub target_token: String,
    /// Token type (category) the pair was compared under.
    pub token_type: TokenType,
    /// Token-pair similarity, exactly as the match memo answered it.
    pub sim: f64,
    /// Where the similarity came from (thesaurus, affix, exact symbol).
    pub provenance: TokenSimProvenance,
}

/// Structural context of a mapping: what TreeMatch saw for the node
/// pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StructuralContext {
    /// Leaves counted under the source node (depth-limited mask size).
    pub source_leaves: usize,
    /// Leaves counted under the target node.
    pub target_leaves: usize,
    /// Source leaves with a strong link into the target subtree.
    pub source_strong_links: usize,
    /// Target leaves with a strong link into the source subtree.
    pub target_strong_links: usize,
    /// `wsim` of the pair during the main (reinforcement) pass — the
    /// value the `th_high`/`th_low` decisions were made on, before the
    /// final recomputation.
    pub main_pass_wsim: f64,
    /// The pair was skipped by leaf-count ratio pruning.
    pub pruned: bool,
    /// The main pass boosted the pair's leaves (`wsim > th_high`).
    pub increased: bool,
    /// The main pass penalized the pair's leaves (`wsim < th_low`).
    pub decreased: bool,
}

/// Full score provenance of one kept mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation {
    /// Source node in the expanded source tree.
    pub source: NodeId,
    /// Target node in the expanded target tree.
    pub target: NodeId,
    /// Source context path.
    pub source_path: String,
    /// Target context path.
    pub target_path: String,
    /// Produced by the leaf generator (1:n) rather than the non-leaf 1:1
    /// generator.
    pub leaf: bool,
    /// Weighted similarity, exactly as reported by the match.
    pub wsim: f64,
    /// Structural component.
    pub ssim: f64,
    /// Linguistic component.
    pub lsim: f64,
    /// Structural weight `w` used for this pair (`w_struct_leaf` for
    /// leaf pairs, `w_struct` otherwise): `wsim = w·ssim + (1−w)·lsim`.
    pub w_struct: f64,
    /// Acceptance threshold the mapping cleared (`wsim ≥ th_accept`).
    pub th_accept: f64,
    /// Element-level name similarity `ns` (token-type-weighted mean);
    /// `lsim = ns × category_scale`.
    pub name_similarity: f64,
    /// Best compatible-category name similarity that scaled `ns` into
    /// `lsim`; 0 when the elements shared no compatible category.
    pub category_scale: f64,
    /// Top contributing token pairs, descending similarity.
    pub token_pairs: Vec<TokenPairScore>,
    /// What TreeMatch saw for the node pair.
    pub structure: StructuralContext,
}

impl Explanation {
    /// Recompose `wsim` from the reported components with the same float
    /// expression the engine used.
    pub fn recomposed_wsim(&self) -> f64 {
        self.w_struct * self.ssim + (1.0 - self.w_struct) * self.lsim
    }

    /// True if the recomposition reproduces the reported `wsim`
    /// bit-exactly — the invariant every served explanation satisfies.
    pub fn recomposes_exactly(&self) -> bool {
        self.recomposed_wsim().to_bits() == self.wsim.to_bits()
    }
}

/// Score provenance for every kept mapping of one schema pair.
#[derive(Debug, Clone, PartialEq)]
pub struct PairExplanation {
    /// Source schema name.
    pub source_name: String,
    /// Target schema name.
    pub target_name: String,
    /// Per-mapping explanations: leaf mappings first (generator order),
    /// then non-leaf mappings.
    pub mappings: Vec<Explanation>,
    /// Element pairs the linguistic phase actually compared.
    pub compared_pairs: usize,
    /// Total element pairs (`|S1| × |S2|`).
    pub total_pairs: usize,
    /// `increase-struct-similarity` invocations during the main pass.
    pub increases: usize,
    /// `decrease-struct-similarity` invocations during the main pass.
    pub decreases: usize,
}

impl PairExplanation {
    /// True if every mapping's explanation recomposes to its reported
    /// `wsim` bit-exactly.
    pub fn recomposes_exactly(&self) -> bool {
        self.mappings.iter().all(Explanation::recomposes_exactly)
    }

    /// Encode the explanation (checksummed framing is the transport's
    /// job; this is the payload encoding, DESIGN.md §14).
    pub fn write_wire(&self, w: &mut WireWriter) {
        w.put_str(&self.source_name);
        w.put_str(&self.target_name);
        w.put_len(self.mappings.len());
        for m in &self.mappings {
            m.write_wire(w);
        }
        w.put_u64(self.compared_pairs as u64);
        w.put_u64(self.total_pairs as u64);
        w.put_u64(self.increases as u64);
        w.put_u64(self.decreases as u64);
    }

    /// Decode an explanation written by [`PairExplanation::write_wire`].
    pub fn read_wire(r: &mut WireReader<'_>) -> Result<PairExplanation, WireError> {
        let source_name = r.get_str()?;
        let target_name = r.get_str()?;
        let n = r.get_len()?;
        let mut mappings = Vec::with_capacity(n);
        for _ in 0..n {
            mappings.push(Explanation::read_wire(r)?);
        }
        Ok(PairExplanation {
            source_name,
            target_name,
            mappings,
            compared_pairs: r.get_u64()? as usize,
            total_pairs: r.get_u64()? as usize,
            increases: r.get_u64()? as usize,
            decreases: r.get_u64()? as usize,
        })
    }
}

impl Explanation {
    /// Encode one mapping's explanation.
    pub fn write_wire(&self, w: &mut WireWriter) {
        w.put_u32(self.source.index() as u32);
        w.put_u32(self.target.index() as u32);
        w.put_str(&self.source_path);
        w.put_str(&self.target_path);
        w.put_bool(self.leaf);
        for v in [
            self.wsim,
            self.ssim,
            self.lsim,
            self.w_struct,
            self.th_accept,
            self.name_similarity,
            self.category_scale,
        ] {
            w.put_f64(v);
        }
        w.put_len(self.token_pairs.len());
        for t in &self.token_pairs {
            w.put_str(&t.source_token);
            w.put_str(&t.target_token);
            w.put_u8(t.token_type.index() as u8);
            w.put_f64(t.sim);
            write_provenance(w, t.provenance);
        }
        let s = &self.structure;
        w.put_u64(s.source_leaves as u64);
        w.put_u64(s.target_leaves as u64);
        w.put_u64(s.source_strong_links as u64);
        w.put_u64(s.target_strong_links as u64);
        w.put_f64(s.main_pass_wsim);
        w.put_bool(s.pruned);
        w.put_bool(s.increased);
        w.put_bool(s.decreased);
    }

    /// Decode one mapping's explanation written by
    /// [`Explanation::write_wire`].
    pub fn read_wire(r: &mut WireReader<'_>) -> Result<Explanation, WireError> {
        let source = NodeId::from_index(r.get_u32()? as usize);
        let target = NodeId::from_index(r.get_u32()? as usize);
        let source_path = r.get_str()?;
        let target_path = r.get_str()?;
        let leaf = r.get_bool()?;
        let mut f = [0.0f64; 7];
        for v in f.iter_mut() {
            *v = r.get_f64()?;
        }
        let n = r.get_len()?;
        let mut token_pairs = Vec::with_capacity(n);
        for _ in 0..n {
            let source_token = r.get_str()?;
            let target_token = r.get_str()?;
            let k = r.get_u8()? as usize;
            if k >= TokenType::ALL.len() {
                return Err(r.err(format!("token type index {k} out of range")));
            }
            token_pairs.push(TokenPairScore {
                source_token,
                target_token,
                token_type: TokenType::ALL[k],
                sim: r.get_f64()?,
                provenance: read_provenance(r)?,
            });
        }
        let structure = StructuralContext {
            source_leaves: r.get_u64()? as usize,
            target_leaves: r.get_u64()? as usize,
            source_strong_links: r.get_u64()? as usize,
            target_strong_links: r.get_u64()? as usize,
            main_pass_wsim: r.get_f64()?,
            pruned: r.get_bool()?,
            increased: r.get_bool()?,
            decreased: r.get_bool()?,
        };
        Ok(Explanation {
            source,
            target,
            source_path,
            target_path,
            leaf,
            wsim: f[0],
            ssim: f[1],
            lsim: f[2],
            w_struct: f[3],
            th_accept: f[4],
            name_similarity: f[5],
            category_scale: f[6],
            token_pairs,
            structure,
        })
    }
}

fn write_provenance(w: &mut WireWriter, p: TokenSimProvenance) {
    match p {
        TokenSimProvenance::ExactSymbol => w.put_u8(0),
        TokenSimProvenance::Thesaurus => w.put_u8(1),
        TokenSimProvenance::Affix { prefix_len, suffix_len, capped } => {
            w.put_u8(2);
            w.put_u32(prefix_len);
            w.put_u32(suffix_len);
            w.put_bool(capped);
        }
        TokenSimProvenance::NoMatch => w.put_u8(3),
    }
}

fn read_provenance(r: &mut WireReader<'_>) -> Result<TokenSimProvenance, WireError> {
    match r.get_u8()? {
        0 => Ok(TokenSimProvenance::ExactSymbol),
        1 => Ok(TokenSimProvenance::Thesaurus),
        2 => Ok(TokenSimProvenance::Affix {
            prefix_len: r.get_u32()?,
            suffix_len: r.get_u32()?,
            capped: r.get_bool()?,
        }),
        3 => Ok(TokenSimProvenance::NoMatch),
        t => Err(r.err(format!("unknown token provenance tag {t}"))),
    }
}

/// Re-execute one prepared pair with instrumentation and explain every
/// kept mapping. Mirrors the session's pair execution phase for phase —
/// same formulas, same loop order — so the captured scores are
/// bit-identical to what [`crate::MatchSession::match_pair`] reports.
pub(crate) fn explain_pair(
    cfg: &CupidConfig,
    s1: &PreparedSchema,
    s2: &PreparedSchema,
    table: &TokenTable,
    thesaurus: &Thesaurus,
    cache: &mut TokenSimCache<'_>,
) -> PairExplanation {
    let pair = pair_lsim(&s1.ling, &s2.ling, cfg, cache);
    let mut ws = Workspace::new(&s1.tree, &s2.tree, &pair.lsim, cfg);
    ws.run_main_pass();
    let (ssim, wsim) = ws.final_matrices();
    let res = TreeMatchResult { leaf_ssim: ws.leaf_ssim.clone(), ssim, wsim, stats: ws.stats };
    let leaf = leaf_mappings(&s1.tree, &s2.tree, &res, &pair.lsim, cfg, Cardinality::OneToN);
    let nonleaf =
        nonleaf_mappings(&s1.tree, &s2.tree, &res, &pair.lsim, cfg, Cardinality::OneToOne);

    let mut mappings = Vec::with_capacity(leaf.len() + nonleaf.len());
    for (set, is_leaf) in [(&leaf, true), (&nonleaf, false)] {
        for m in set {
            mappings.push(explain_mapping(cfg, s1, s2, table, thesaurus, cache, &ws, m, is_leaf));
        }
    }
    PairExplanation {
        source_name: s1.name.clone(),
        target_name: s2.name.clone(),
        mappings,
        compared_pairs: pair.compared_pairs,
        total_pairs: pair.total_pairs,
        increases: ws.stats.increases,
        decreases: ws.stats.decreases,
    }
}

/// Explain one kept mapping: replay its linguistic decomposition and
/// read its structural context out of the finished workspace.
#[allow(clippy::too_many_arguments)]
fn explain_mapping(
    cfg: &CupidConfig,
    s1: &PreparedSchema,
    s2: &PreparedSchema,
    table: &TokenTable,
    thesaurus: &Thesaurus,
    cache: &mut TokenSimCache<'_>,
    ws: &Workspace<'_>,
    m: &MappingElement,
    leaf: bool,
) -> Explanation {
    let i1 = s1.tree.node(m.source).element.index();
    let i2 = s2.tree.node(m.target).element.index();
    let comparable = s1.ling.is_comparable(i1) && s2.ling.is_comparable(i2);

    // Replay the category-scale computation of `pair_lsim` for this one
    // element pair: the strict max of compatible-category keyword
    // similarities, in the same iteration order.
    let mut scale = 0.0f64;
    if comparable {
        for (c1, k1) in s1.ling.categories.categories.iter().zip(s1.ling.keyword_ids()) {
            if !c1.members.iter().any(|&e| e.index() == i1) {
                continue;
            }
            for (c2, k2) in s2.ling.categories.categories.iter().zip(s2.ling.keyword_ids()) {
                if !c2.members.iter().any(|&e| e.index() == i2) {
                    continue;
                }
                let ns_k = ns_token_ids(k1, k2, cache);
                if ns_k > cfg.th_ns && ns_k > scale {
                    scale = ns_k;
                }
            }
        }
    }

    let mut name_similarity = 0.0;
    let mut token_pairs = Vec::new();
    if comparable && scale > 0.0 {
        name_similarity =
            ns_elements_ids(s1.ling.typed(i1), s2.ling.typed(i2), &cfg.token_weights, cache);
        token_pairs = top_token_pairs(cfg, s1, s2, i1, i2, table, thesaurus, cache);
    }

    let (si, ti) = (m.source.index(), m.target.index());
    let m1 = &ws.masks1[si];
    let m2 = &ws.masks2[ti];
    let source_strong_links = m1.ones().filter(|&x| ws.strong_rows[x].intersects(m2)).count();
    let target_strong_links = m2.ones().filter(|&y| ws.strong_cols[y].intersects(m1)).count();
    let pruned = !leaf && ws.pruned(m.source, m.target);
    let main_pass_wsim = ws.node_wsim.get(si, ti);
    let structure = StructuralContext {
        source_leaves: ws.mask1_count[si],
        target_leaves: ws.mask2_count[ti],
        source_strong_links,
        target_strong_links,
        main_pass_wsim,
        pruned,
        increased: !pruned && main_pass_wsim > cfg.th_high,
        decreased: !pruned && main_pass_wsim < cfg.th_low,
    };

    Explanation {
        source: m.source,
        target: m.target,
        source_path: m.source_path.clone(),
        target_path: m.target_path.clone(),
        leaf,
        wsim: m.wsim,
        ssim: m.ssim,
        lsim: m.lsim,
        w_struct: cfg.w_struct_for(leaf),
        th_accept: cfg.th_accept,
        name_similarity,
        category_scale: scale,
        token_pairs,
        structure,
    }
}

/// Best-match token pairs of an element pair, both directions, deduped
/// and sorted by descending similarity, capped at [`TOP_TOKEN_PAIRS`].
#[allow(clippy::too_many_arguments)]
fn top_token_pairs(
    cfg: &CupidConfig,
    s1: &PreparedSchema,
    s2: &PreparedSchema,
    i1: usize,
    i2: usize,
    table: &TokenTable,
    thesaurus: &Thesaurus,
    cache: &mut TokenSimCache<'_>,
) -> Vec<TokenPairScore> {
    let mut raw: Vec<(TokenId, TokenId, TokenType, f64)> = Vec::new();
    for ttype in TokenType::ALL {
        if cfg.token_weights.weight(ttype) == 0.0 {
            continue;
        }
        let a_ids = s1.ling.typed(i1).of_type(ttype.index());
        let b_ids = s2.ling.typed(i2).of_type(ttype.index());
        let mut best_of = |from: &[TokenId], to: &[TokenId], flip: bool| {
            for &a in from {
                let mut best: Option<(TokenId, f64)> = None;
                for &b in to {
                    let s = cache.sim(a, b);
                    if best.is_none_or(|(_, bs)| s > bs) {
                        best = Some((b, s));
                    }
                }
                if let Some((b, s)) = best {
                    let (x, y) = if flip { (b, a) } else { (a, b) };
                    raw.push((x, y, ttype, s));
                }
            }
        };
        best_of(a_ids, b_ids, false);
        best_of(b_ids, a_ids, true);
    }
    raw.sort_by(|a, b| {
        b.3.partial_cmp(&a.3)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.index().cmp(&b.0.index()))
            .then(a.1.index().cmp(&b.1.index()))
    });
    raw.dedup_by_key(|&mut (a, b, t, _)| (a, b, t));
    raw.truncate(TOP_TOKEN_PAIRS);
    raw.into_iter()
        .map(|(a, b, ttype, sim)| {
            let (score, provenance) = class_similarity_explained(
                table.class(a),
                table.text(a),
                table.class(b),
                table.text(b),
                thesaurus,
                &cfg.affix,
            );
            debug_assert_eq!(score.to_bits(), sim.to_bits(), "provenance score must match memo");
            TokenPairScore {
                source_token: table.text(a).to_string(),
                target_token: table.text(b).to_string(),
                token_type: ttype,
                sim,
                provenance,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::MatchSession;
    use cupid_lexical::ThesaurusBuilder;
    use cupid_model::{DataType, ElementKind, Schema, SchemaBuilder};

    fn thesaurus() -> Thesaurus {
        ThesaurusBuilder::new()
            .abbreviation("Qty", &["quantity"])
            .synonym("Invoice", "Bill", 1.0)
            .build()
            .unwrap()
    }

    fn schema(name: &str, container: &str, fields: &[(&str, DataType)]) -> Schema {
        let mut b = SchemaBuilder::new(name);
        let c = b.structured(b.root(), container, ElementKind::XmlElement);
        for (f, dt) in fields {
            b.atomic(c, *f, ElementKind::XmlElement, *dt);
        }
        b.build().unwrap()
    }

    fn corpus() -> Vec<Schema> {
        vec![
            schema("S0", "Item", &[("Qty", DataType::Int), ("Invoice", DataType::String)]),
            schema("S1", "Item", &[("Quantity", DataType::Int), ("Bill", DataType::String)]),
            schema(
                "S2",
                "Order",
                &[("Quantity", DataType::Int), ("ShipAddress", DataType::String)],
            ),
            schema("S3", "Order", &[("Quantity", DataType::Int), ("ShipAddr", DataType::String)]),
        ]
    }

    #[test]
    fn explanation_matches_match_output_and_recomposes() {
        let cfg = crate::CupidConfig::default();
        let th = thesaurus();
        let corpus = corpus();
        let mut session = MatchSession::new(&cfg, &th).threads(1);
        let ids = session.add_corpus(&corpus).unwrap();
        let summary = session.match_pair(ids[0], ids[1]);
        let ex = session.explain_pair(ids[0], ids[1]);

        // The explanation covers exactly the kept mappings, leaf first,
        // with bit-identical scores.
        let want: Vec<&MappingElement> =
            summary.leaf_mappings.iter().chain(&summary.nonleaf_mappings).collect();
        assert_eq!(ex.mappings.len(), want.len());
        for (e, m) in ex.mappings.iter().zip(want) {
            assert_eq!(e.source_path, m.source_path);
            assert_eq!(e.target_path, m.target_path);
            assert_eq!(e.wsim.to_bits(), m.wsim.to_bits());
            assert_eq!(e.ssim.to_bits(), m.ssim.to_bits());
            assert_eq!(e.lsim.to_bits(), m.lsim.to_bits());
            assert!(e.recomposes_exactly(), "{e:?}");
            assert!(e.wsim >= e.th_accept, "kept mapping must clear th_accept");
        }
        assert!(ex.recomposes_exactly());
        assert_eq!(ex.compared_pairs, summary.compared_pairs);
        assert_eq!(ex.total_pairs, summary.total_pairs);
    }

    #[test]
    fn token_provenance_distinguishes_thesaurus_and_affix() {
        let cfg = crate::CupidConfig::default();
        let th = thesaurus();
        let corpus = corpus();
        let mut session = MatchSession::new(&cfg, &th).threads(1);
        let ids = session.add_corpus(&corpus).unwrap();

        // Invoice ↔ Bill is a thesaurus synonym.
        let ex = session.explain_pair(ids[0], ids[1]);
        let inv = ex
            .mappings
            .iter()
            .find(|e| e.source_path.ends_with("Invoice"))
            .expect("Invoice maps to Bill");
        assert!(inv
            .token_pairs
            .iter()
            .any(|t| t.provenance == TokenSimProvenance::Thesaurus && t.sim == 1.0));

        // ShipAddress ↔ ShipAddr: "ship" is exact, "address" ↔ "addr"
        // falls back to the common-prefix similarity.
        let ex = session.explain_pair(ids[2], ids[3]);
        let affix = ex
            .mappings
            .iter()
            .flat_map(|e| &e.token_pairs)
            .find(|t| matches!(t.provenance, TokenSimProvenance::Affix { .. }))
            .expect("an affix-matched token pair");
        assert!(affix.sim > 0.0);
        // Sorted descending, capped.
        for e in &ex.mappings {
            assert!(e.token_pairs.len() <= TOP_TOKEN_PAIRS);
            assert!(e.token_pairs.windows(2).all(|w| w[0].sim >= w[1].sim));
        }
    }

    #[test]
    fn lsim_decomposes_into_ns_times_scale() {
        let cfg = crate::CupidConfig::default();
        let th = thesaurus();
        let corpus = corpus();
        let mut session = MatchSession::new(&cfg, &th).threads(1);
        let ids = session.add_corpus(&corpus).unwrap();
        let ex = session.explain_pair(ids[0], ids[1]);
        for e in &ex.mappings {
            if e.category_scale > 0.0 {
                let recomposed = (e.name_similarity * e.category_scale).clamp(0.0, 1.0);
                assert_eq!(recomposed.to_bits(), e.lsim.to_bits(), "{e:?}");
            } else {
                assert_eq!(e.lsim, 0.0);
            }
        }
    }

    #[test]
    fn shared_explain_is_identical_and_leaves_session_untouched() {
        let cfg = crate::CupidConfig::default();
        let th = thesaurus();
        let corpus = corpus();
        let mut session = MatchSession::new(&cfg, &th).threads(1);
        let ids = session.add_corpus(&corpus).unwrap();
        let want = session.explain_pair(ids[0], ids[1]);
        let computed = session.stats().distinct_pairs_computed;
        let (shared, store) = session.explain_pair_shared(ids[0], ids[1]);
        assert_eq!(shared, want);
        assert_eq!(session.stats().distinct_pairs_computed, computed);
        session.absorb(store, 0);
        assert_eq!(session.stats().distinct_pairs_computed, computed);
    }

    #[test]
    fn structural_context_reports_leaf_sets_and_links() {
        let cfg = crate::CupidConfig::default();
        let th = thesaurus();
        let corpus = corpus();
        let mut session = MatchSession::new(&cfg, &th).threads(1);
        let ids = session.add_corpus(&corpus).unwrap();
        let ex = session.explain_pair(ids[0], ids[1]);
        let item = ex
            .mappings
            .iter()
            .find(|e| !e.leaf && e.source_path.ends_with("Item"))
            .expect("Item containers map");
        assert_eq!(item.structure.source_leaves, 2);
        assert_eq!(item.structure.target_leaves, 2);
        assert_eq!(item.structure.source_strong_links, 2);
        assert_eq!(item.structure.target_strong_links, 2);
        assert!(item.structure.increased, "a perfect container pair gets reinforced");
        assert!(!item.structure.pruned);
    }

    #[test]
    fn wire_round_trip_is_exact() {
        let cfg = crate::CupidConfig::default();
        let th = thesaurus();
        let corpus = corpus();
        let mut session = MatchSession::new(&cfg, &th).threads(1);
        let ids = session.add_corpus(&corpus).unwrap();
        let ex = session.explain_pair(ids[0], ids[1]);
        assert!(!ex.mappings.is_empty());
        let mut w = WireWriter::new();
        ex.write_wire(&mut w);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let back = PairExplanation::read_wire(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, ex);
        assert!(back.recomposes_exactly());
    }
}
