//! Linguistic matching (§5): name similarity and the `lsim` table.
//!
//! The three steps — normalization, categorization, comparison — produce
//! a table of linguistic similarity coefficients between elements of the
//! two schemas. *"The similarity is assumed to be zero for schema
//! elements that do not belong to any compatible categories."*
//!
//! Two engines compute the same table:
//!
//! * [`analyze`] — the production path. Both schemas' names (and the
//!   category keywords) are interned into one [`TokenTable`]; a
//!   [`TokenSimCache`] then memoizes `sim(t1, t2)` per distinct token
//!   pair, so `ns` over element pairs reduces to table lookups over id
//!   slices (DESIGN.md §6).
//! * [`analyze_naive`] — the retained reference path, a direct
//!   transliteration of §5 that recomputes token similarity per element
//!   pair. It is the oracle the equivalence suite
//!   (`tests/linguistic_equivalence.rs`) checks the interned engine
//!   against: same `lsim` bits, same counters, across randomized
//!   schemas and thesauri.

use cupid_lexical::strsim::{token_similarity, AffixConfig};
use cupid_lexical::{
    token_id_from_wire, NormalizedName, Normalizer, Thesaurus, Token, TokenId, TokenSimCache,
    TokenTable, TokenType,
};
use cupid_model::{ElementId, Schema, WireError, WireReader, WireWriter};

use crate::categories::{categorize, is_linguistically_comparable, SchemaCategories};
use crate::config::{CupidConfig, TokenTypeWeights};
use crate::simmatrix::SimMatrix;

/// Name similarity of two token *sets* (§5.2):
///
/// ```text
/// ns(T1,T2) = ( Σ_{t1∈T1} max_{t2∈T2} sim(t1,t2)
///             + Σ_{t2∈T2} max_{t1∈T1} sim(t1,t2) ) / (|T1| + |T2|)
/// ```
pub fn ns_token_sets(
    t1: &[&Token],
    t2: &[&Token],
    thesaurus: &Thesaurus,
    affix: &AffixConfig,
) -> f64 {
    if t1.is_empty() && t2.is_empty() {
        return 0.0;
    }
    let best_against = |t: &Token, others: &[&Token]| -> f64 {
        others.iter().map(|o| token_similarity(t, o, thesaurus, affix)).fold(0.0, f64::max)
    };
    let sum1: f64 = t1.iter().map(|t| best_against(t, t2)).sum();
    let sum2: f64 = t2.iter().map(|t| best_against(t, t1)).sum();
    (sum1 + sum2) / (t1.len() + t2.len()) as f64
}

/// Element-level name similarity (§5.3): a weighted mean of the
/// per-token-type name similarities, weighted by the configured token
/// type weight and by the token mass of each type:
///
/// ```text
/// ns(m1,m2) = Σ_i  w_i · ns(T1i,T2i) · (|T1i|+|T2i|)
///           / Σ_i  w_i · (|T1i|+|T2i|)
/// ```
///
/// This matches the paper's prose — content and concept tokens weigh more
/// than numbers and common words — and degenerates to plain `ns` when one
/// token type is present.
pub fn ns_elements(
    m1: &NormalizedName,
    m2: &NormalizedName,
    thesaurus: &Thesaurus,
    weights: &TokenTypeWeights,
    affix: &AffixConfig,
) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for ttype in TokenType::ALL {
        let w = weights.weight(ttype);
        if w == 0.0 {
            continue;
        }
        let t1: Vec<&Token> = m1.tokens_of(ttype).collect();
        let t2: Vec<&Token> = m2.tokens_of(ttype).collect();
        let mass = (t1.len() + t2.len()) as f64;
        if mass == 0.0 {
            continue;
        }
        num += w * ns_token_sets(&t1, &t2, thesaurus, affix) * mass;
        den += w * mass;
    }
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

/// [`ns_token_sets`] over interned token ids: the identical formula and
/// accumulation order, with every `sim(t1, t2)` answered by the memo.
pub fn ns_token_ids(t1: &[TokenId], t2: &[TokenId], cache: &mut TokenSimCache<'_>) -> f64 {
    if t1.is_empty() && t2.is_empty() {
        return 0.0;
    }
    let mut sum1 = 0.0;
    for &a in t1 {
        let mut best = 0.0f64;
        for &b in t2 {
            best = best.max(cache.sim(a, b));
        }
        sum1 += best;
    }
    let mut sum2 = 0.0;
    for &b in t2 {
        let mut best = 0.0f64;
        for &a in t1 {
            best = best.max(cache.sim(a, b));
        }
        sum2 += best;
    }
    (sum1 + sum2) / (t1.len() + t2.len()) as f64
}

/// One element's interned token ids, grouped by token type in
/// [`TokenType::ALL`] order (original token order preserved within each
/// type). Precomputed once per element, this kills the per-pair
/// `Vec<&Token>` collection [`ns_elements`] pays for every comparison.
#[derive(Debug, Clone)]
pub struct TypedIds {
    ids: Vec<TokenId>,
    /// `starts[k]..starts[k + 1]` is the id range of `TokenType::ALL[k]`.
    starts: [u32; 6],
}

impl TypedIds {
    /// Group an interned name's ids by token type. The name must have
    /// been interned ([`TokenTable::intern_name`]) first.
    pub fn of(name: &NormalizedName) -> TypedIds {
        debug_assert_eq!(name.ids.len(), name.tokens.len(), "name must be interned first");
        let mut ids = Vec::with_capacity(name.ids.len());
        let mut starts = [0u32; 6];
        for (k, ttype) in TokenType::ALL.iter().enumerate() {
            starts[k] = ids.len() as u32;
            for (t, &id) in name.tokens.iter().zip(&name.ids) {
                if t.ttype == *ttype {
                    ids.push(id);
                }
            }
        }
        starts[5] = ids.len() as u32;
        TypedIds { ids, starts }
    }

    #[inline]
    pub(crate) fn of_type(&self, k: usize) -> &[TokenId] {
        &self.ids[self.starts[k] as usize..self.starts[k + 1] as usize]
    }

    /// Encode the grouped id slices (snapshot support; DESIGN.md §8).
    pub fn write_wire(&self, w: &mut WireWriter) {
        w.put_len(self.ids.len());
        for id in &self.ids {
            w.put_u32(id.index() as u32);
        }
        for s in self.starts {
            w.put_u32(s);
        }
    }

    /// Decode grouped id slices written by [`TypedIds::write_wire`].
    pub fn read_wire(r: &mut WireReader<'_>, vocab: usize) -> Result<TypedIds, WireError> {
        let n = r.get_len()?;
        let mut ids = Vec::with_capacity(n);
        for _ in 0..n {
            let raw = r.get_u32()?;
            ids.push(token_id_from_wire(r, raw, vocab)?);
        }
        let mut starts = [0u32; 6];
        for s in starts.iter_mut() {
            *s = r.get_u32()?;
        }
        let monotone = starts.windows(2).all(|w| w[0] <= w[1]);
        if !monotone || starts[0] != 0 || starts[5] as usize != n {
            return Err(r.err(format!("invalid type-group offsets {starts:?} for {n} ids")));
        }
        Ok(TypedIds { ids, starts })
    }
}

/// [`ns_elements`] over precomputed per-type id slices: the identical
/// weighted mean, with token-set similarities answered by the memo.
pub fn ns_elements_ids(
    a: &TypedIds,
    b: &TypedIds,
    weights: &TokenTypeWeights,
    cache: &mut TokenSimCache<'_>,
) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for ttype in TokenType::ALL {
        let w = weights.weight(ttype);
        if w == 0.0 {
            continue;
        }
        let t1 = a.of_type(ttype.index());
        let t2 = b.of_type(ttype.index());
        let mass = (t1.len() + t2.len()) as f64;
        if mass == 0.0 {
            continue;
        }
        num += w * ns_token_ids(t1, t2, cache) * mass;
        den += w * mass;
    }
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

/// Comparison-relevant (non-eliminated) interned ids of a name, in token
/// order — the id-slice counterpart of
/// [`NormalizedName::comparable_tokens`].
fn comparable_ids(name: &NormalizedName) -> Vec<TokenId> {
    debug_assert_eq!(name.ids.len(), name.tokens.len(), "name must be interned first");
    name.tokens.iter().zip(&name.ids).filter(|(t, _)| !t.is_ignored()).map(|(_, &id)| id).collect()
}

/// Everything the linguistic phase derives from *one* schema before any
/// interning: normalized names, categories, and comparability flags.
///
/// This is the thread-safe half of per-schema precompute — it touches no
/// shared state, so a batch session can run it for many schemas in
/// parallel and then intern the results sequentially into one session
/// [`TokenTable`] ([`RawSchemaLing::intern`]; DESIGN.md §7).
#[derive(Debug, Clone)]
pub struct RawSchemaLing {
    names: Vec<NormalizedName>,
    categories: SchemaCategories,
    comparable: Vec<bool>,
}

impl RawSchemaLing {
    /// Normalize and categorize one schema (no interning).
    pub fn of(schema: &Schema, thesaurus: &Thesaurus) -> Self {
        let normalizer = Normalizer::default();
        let names: Vec<NormalizedName> =
            schema.iter().map(|(_, e)| normalizer.normalize(&e.name, thesaurus)).collect();
        let categories = categorize(schema, &names);
        let comparable: Vec<bool> =
            schema.iter().map(|(e, _)| is_linguistically_comparable(schema, e)).collect();
        RawSchemaLing { names, categories, comparable }
    }

    /// Intern every name and category keyword into `table`, producing
    /// the pair-ready [`SchemaLing`]. Interning order only assigns ids;
    /// similarity values depend on `(class, text)` alone, so schemas
    /// interned in any order produce bit-identical `lsim` tables.
    pub fn intern(mut self, table: &mut TokenTable) -> SchemaLing {
        for n in self.names.iter_mut() {
            table.intern_name(n);
        }
        let typed: Vec<TypedIds> = self.names.iter().map(TypedIds::of).collect();
        // Container keywords are clones of element names; concept and
        // data-type keywords are freshly built. Intern them all
        // unconditionally (idempotent, and ids from any other table
        // would be silently wrong).
        for c in self.categories.categories.iter_mut() {
            table.intern_name(&mut c.keywords);
        }
        let keyword_ids: Vec<Vec<TokenId>> =
            self.categories.categories.iter().map(|c| comparable_ids(&c.keywords)).collect();
        SchemaLing {
            names: self.names,
            categories: self.categories,
            typed,
            keyword_ids,
            comparable: self.comparable,
        }
    }
}

/// One schema's complete linguistic precompute, interned into a (shared)
/// [`TokenTable`]: the per-schema half of the split `analyze`. Two of
/// these plus a [`TokenSimCache`] over the same table are all
/// [`pair_lsim`] needs — no re-normalization, re-categorization or
/// re-interning per pair (DESIGN.md §7).
#[derive(Debug, Clone)]
pub struct SchemaLing {
    /// Normalized names by element index.
    pub names: Vec<NormalizedName>,
    /// The schema's categories (§5.2).
    pub categories: SchemaCategories,
    /// Per-element interned ids grouped by token type.
    typed: Vec<TypedIds>,
    /// Per-category comparable keyword ids.
    keyword_ids: Vec<Vec<TokenId>>,
    /// Per-element: participates in linguistic matching (§8.2).
    comparable: Vec<bool>,
}

impl SchemaLing {
    /// Precompute one schema in one step (normalize + categorize +
    /// intern into `table`).
    pub fn prepare(schema: &Schema, thesaurus: &Thesaurus, table: &mut TokenTable) -> Self {
        RawSchemaLing::of(schema, thesaurus).intern(table)
    }

    /// Number of schema elements covered.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if the schema had no elements.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Per-type interned ids of element `i` (explanation capture).
    pub(crate) fn typed(&self, i: usize) -> &TypedIds {
        &self.typed[i]
    }

    /// Per-category comparable keyword ids (explanation capture).
    pub(crate) fn keyword_ids(&self) -> &[Vec<TokenId>] {
        &self.keyword_ids
    }

    /// Whether element `i` participates in linguistic matching.
    pub(crate) fn is_comparable(&self, i: usize) -> bool {
        self.comparable[i]
    }

    /// Encode the complete precompute verbatim — names, categories,
    /// per-type id slices, keyword ids, comparability flags. Nothing is
    /// re-derived on decode, so a loaded `SchemaLing` drives
    /// [`pair_lsim`] through the exact same id slices (and therefore
    /// the exact same float operations) as the one that was saved —
    /// the heart of the snapshot bit-identity argument (DESIGN.md §8).
    pub fn write_wire(&self, w: &mut WireWriter) {
        w.put_len(self.names.len());
        for n in &self.names {
            n.write_wire(w);
        }
        self.categories.write_wire(w);
        for t in &self.typed {
            t.write_wire(w);
        }
        w.put_len(self.keyword_ids.len());
        for ids in &self.keyword_ids {
            w.put_len(ids.len());
            for id in ids {
                w.put_u32(id.index() as u32);
            }
        }
        for &c in &self.comparable {
            w.put_bool(c);
        }
    }

    /// Decode a precompute written by [`SchemaLing::write_wire`]. Ids
    /// are bounds-checked against `vocab`, the vocabulary size of the
    /// snapshot's [`TokenTable`].
    pub fn read_wire(r: &mut WireReader<'_>, vocab: usize) -> Result<SchemaLing, WireError> {
        let n = r.get_len()?;
        let mut names = Vec::with_capacity(n);
        for _ in 0..n {
            names.push(NormalizedName::read_wire(r, vocab)?);
        }
        let categories = SchemaCategories::read_wire(r, vocab)?;
        if categories.element_categories.len() != n {
            return Err(r.err(format!(
                "category index covers {} elements, schema has {n}",
                categories.element_categories.len()
            )));
        }
        let mut typed = Vec::with_capacity(n);
        for _ in 0..n {
            typed.push(TypedIds::read_wire(r, vocab)?);
        }
        let nk = r.get_len()?;
        if nk != categories.categories.len() {
            return Err(r.err(format!(
                "{nk} keyword id lists for {} categories",
                categories.categories.len()
            )));
        }
        let mut keyword_ids = Vec::with_capacity(nk);
        for _ in 0..nk {
            let ni = r.get_len()?;
            let mut ids = Vec::with_capacity(ni);
            for _ in 0..ni {
                let raw = r.get_u32()?;
                ids.push(token_id_from_wire(r, raw, vocab)?);
            }
            keyword_ids.push(ids);
        }
        let mut comparable = Vec::with_capacity(n);
        for _ in 0..n {
            comparable.push(r.get_bool()?);
        }
        Ok(SchemaLing { names, categories, typed, keyword_ids, comparable })
    }
}

/// The per-pair output of [`pair_lsim`]: the `lsim` table plus the
/// pruning counters, without the per-schema artifacts (those live in the
/// two [`SchemaLing`]s and are shared across pairs).
#[derive(Debug, Clone)]
pub struct PairLsim {
    /// The linguistic similarity table.
    pub lsim: LsimTable,
    /// Number of compatible category pairs found.
    pub compatible_category_pairs: usize,
    /// Number of element pairs actually compared (pruning diagnostics).
    pub compared_pairs: usize,
    /// Total element pairs (`|S1| × |S2|`).
    pub total_pairs: usize,
}

/// The per-pair half of the split linguistic phase: combine two prepared
/// schemas into an `lsim` table. Identical formulas and loop order to
/// [`analyze`] (which is implemented on top of this), so the output is
/// bit-identical to the single-pair path no matter how the inputs were
/// prepared or which (warm or cold) cache is supplied — `sim` values
/// depend only on token content, never on cache state.
pub fn pair_lsim(
    p1: &SchemaLing,
    p2: &SchemaLing,
    cfg: &CupidConfig,
    cache: &mut TokenSimCache<'_>,
) -> PairLsim {
    let (n1, n2) = (p1.len(), p2.len());
    // Compatible category pairs: keyword sets name-similar above th_ns.
    // The comparison uses the plain (unweighted) set formula over the
    // comparable keyword tokens.
    let mut compatible_pairs = 0usize;
    // scale[e1][e2] = max ns(c1,c2) over compatible category pairs.
    let mut scale = SimMatrix::zeros(n1, n2);
    for (c1, k1) in p1.categories.categories.iter().zip(&p1.keyword_ids) {
        for (c2, k2) in p2.categories.categories.iter().zip(&p2.keyword_ids) {
            let ns_k = ns_token_ids(k1, k2, cache);
            if ns_k <= cfg.th_ns {
                continue;
            }
            compatible_pairs += 1;
            for &m1 in &c1.members {
                for &m2 in &c2.members {
                    if ns_k > scale.get(m1.index(), m2.index()) {
                        scale.set(m1.index(), m2.index(), ns_k);
                    }
                }
            }
        }
    }

    // lsim = ns(m1,m2) × max category ns, for pairs with any compatible
    // category; zero elsewhere. Element ids are dense and in arena
    // order ([`Schema::iter`]), so iterating indices is iterating
    // elements.
    let mut lsim = LsimTable::zeros(n1, n2);
    let mut compared = 0usize;
    for i1 in 0..n1 {
        if !p1.comparable[i1] {
            continue;
        }
        for i2 in 0..n2 {
            if !p2.comparable[i2] {
                continue;
            }
            let sc = scale.get(i1, i2);
            if sc <= 0.0 {
                continue;
            }
            compared += 1;
            let ns = ns_elements_ids(&p1.typed[i1], &p2.typed[i2], &cfg.token_weights, cache);
            lsim.set(ElementId::from_index(i1), ElementId::from_index(i2), ns * sc);
        }
    }

    PairLsim {
        lsim,
        compatible_category_pairs: compatible_pairs,
        compared_pairs: compared,
        total_pairs: n1 * n2,
    }
}

/// The `lsim` lookup table, indexed by element ids of the two schemas.
#[derive(Debug, Clone)]
pub struct LsimTable {
    m: SimMatrix,
}

impl LsimTable {
    /// A zero table for `n1 × n2` elements.
    pub fn zeros(n1: usize, n2: usize) -> Self {
        LsimTable { m: SimMatrix::zeros(n1, n2) }
    }

    /// `lsim` of two elements.
    #[inline]
    pub fn get(&self, e1: ElementId, e2: ElementId) -> f64 {
        self.m.get(e1.index(), e2.index())
    }

    /// Override an entry (used for initial mappings, §8.4).
    pub fn set(&mut self, e1: ElementId, e2: ElementId, v: f64) {
        self.m.set(e1.index(), e2.index(), v.clamp(0.0, 1.0));
    }

    /// Underlying matrix (diagnostics).
    pub fn matrix(&self) -> &SimMatrix {
        &self.m
    }
}

/// The full output of the linguistic phase, kept for diagnostics and for
/// the evaluation harness.
#[derive(Debug, Clone)]
pub struct LinguisticAnalysis {
    /// Normalized names of schema 1's elements (by element index).
    pub names1: Vec<NormalizedName>,
    /// Normalized names of schema 2's elements.
    pub names2: Vec<NormalizedName>,
    /// Categories of schema 1.
    pub categories1: SchemaCategories,
    /// Categories of schema 2.
    pub categories2: SchemaCategories,
    /// The linguistic similarity table.
    pub lsim: LsimTable,
    /// Number of compatible category pairs found.
    pub compatible_category_pairs: usize,
    /// Number of element pairs actually compared (pruning diagnostics).
    pub compared_pairs: usize,
    /// Total element pairs (`|S1| × |S2|`), for pruning ratio reporting.
    pub total_pairs: usize,
    /// Distinct interned tokens across both schemas and the category
    /// keywords (`|V|`). 0 when produced by [`analyze_naive`], which
    /// does not intern.
    pub vocab_size: usize,
    /// Distinct token pairs whose similarity was actually computed by
    /// the memo — every further token comparison was a lookup. 0 when
    /// produced by [`analyze_naive`].
    pub distinct_token_pairs: usize,
}

impl LinguisticAnalysis {
    /// Fraction of element pairs skipped thanks to categorization.
    pub fn pruning_ratio(&self) -> f64 {
        if self.total_pairs == 0 {
            return 0.0;
        }
        1.0 - self.compared_pairs as f64 / self.total_pairs as f64
    }
}

/// Run the linguistic phase over two schemas (the interned engine).
///
/// Implemented as the split engine run once: both schemas are prepared
/// ([`SchemaLing::prepare`] — normalization, categorization, interning
/// into one [`TokenTable`], per-type id slices per element) and combined
/// ([`pair_lsim`]), with every `sim(t1, t2)` answered through a
/// [`TokenSimCache`] that computes each distinct token pair exactly
/// once. Produces bit-identical output to [`analyze_naive`]; batch
/// sessions ([`crate::session`]) call the same two halves but reuse the
/// per-schema half across pairs.
pub fn analyze(
    s1: &Schema,
    s2: &Schema,
    thesaurus: &Thesaurus,
    cfg: &CupidConfig,
) -> LinguisticAnalysis {
    let mut table = TokenTable::new();
    let p1 = SchemaLing::prepare(s1, thesaurus, &mut table);
    let p2 = SchemaLing::prepare(s2, thesaurus, &mut table);
    let mut cache = TokenSimCache::new(&table, thesaurus, &cfg.affix);
    let pair = pair_lsim(&p1, &p2, cfg, &mut cache);
    LinguisticAnalysis {
        total_pairs: pair.total_pairs,
        vocab_size: cache.vocab_size(),
        distinct_token_pairs: cache.distinct_pairs_computed(),
        names1: p1.names,
        names2: p2.names,
        categories1: p1.categories,
        categories2: p2.categories,
        lsim: pair.lsim,
        compatible_category_pairs: pair.compatible_category_pairs,
        compared_pairs: pair.compared_pairs,
    }
}

/// The naive reference engine: §5 transliterated, re-running string
/// token similarity for every element pair. Kept (not dead code) as the
/// oracle for the interned engine — `tests/linguistic_equivalence.rs`
/// asserts [`analyze`] reproduces its `lsim` bits and counters exactly —
/// and as the baseline leg of the `linguistic` bench.
pub fn analyze_naive(
    s1: &Schema,
    s2: &Schema,
    thesaurus: &Thesaurus,
    cfg: &CupidConfig,
) -> LinguisticAnalysis {
    let normalizer = Normalizer::default();
    let names1: Vec<NormalizedName> =
        s1.iter().map(|(_, e)| normalizer.normalize(&e.name, thesaurus)).collect();
    let names2: Vec<NormalizedName> =
        s2.iter().map(|(_, e)| normalizer.normalize(&e.name, thesaurus)).collect();
    let categories1 = categorize(s1, &names1);
    let categories2 = categorize(s2, &names2);

    // Compatible category pairs: keyword sets name-similar above th_ns.
    // The comparison uses the plain (unweighted) set formula over the
    // comparable keyword tokens.
    let mut compatible_pairs = 0usize;
    // scale[e1][e2] = max ns(c1,c2) over compatible category pairs.
    let mut scale = SimMatrix::zeros(s1.len(), s2.len());
    for c1 in &categories1.categories {
        let k1: Vec<&Token> = c1.keywords.comparable_tokens().collect();
        for c2 in &categories2.categories {
            let k2: Vec<&Token> = c2.keywords.comparable_tokens().collect();
            let ns_k = ns_token_sets(&k1, &k2, thesaurus, &cfg.affix);
            if ns_k <= cfg.th_ns {
                continue;
            }
            compatible_pairs += 1;
            for &m1 in &c1.members {
                for &m2 in &c2.members {
                    if ns_k > scale.get(m1.index(), m2.index()) {
                        scale.set(m1.index(), m2.index(), ns_k);
                    }
                }
            }
        }
    }

    // lsim = ns(m1,m2) × max category ns, for pairs with any compatible
    // category; zero elsewhere.
    let mut lsim = LsimTable::zeros(s1.len(), s2.len());
    let mut compared = 0usize;
    for (e1, _) in s1.iter() {
        if !is_linguistically_comparable(s1, e1) {
            continue;
        }
        for (e2, _) in s2.iter() {
            if !is_linguistically_comparable(s2, e2) {
                continue;
            }
            let sc = scale.get(e1.index(), e2.index());
            if sc <= 0.0 {
                continue;
            }
            compared += 1;
            let ns = ns_elements(
                &names1[e1.index()],
                &names2[e2.index()],
                thesaurus,
                &cfg.token_weights,
                &cfg.affix,
            );
            lsim.set(e1, e2, ns * sc);
        }
    }

    LinguisticAnalysis {
        total_pairs: s1.len() * s2.len(),
        vocab_size: 0,
        distinct_token_pairs: 0,
        names1,
        names2,
        categories1,
        categories2,
        lsim,
        compatible_category_pairs: compatible_pairs,
        compared_pairs: compared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cupid_lexical::ThesaurusBuilder;
    use cupid_model::{DataType, ElementKind, SchemaBuilder};

    fn cfg() -> CupidConfig {
        CupidConfig::default()
    }

    fn paper_thesaurus() -> Thesaurus {
        ThesaurusBuilder::new()
            .abbreviation("UOM", &["unit", "of", "measure"])
            .abbreviation("PO", &["purchase", "order"])
            .abbreviation("Qty", &["quantity"])
            .abbreviation("Num", &["number"])
            .synonym("Invoice", "Bill", 1.0)
            .synonym("Ship", "Deliver", 1.0)
            .build()
            .unwrap()
    }

    fn normalize(name: &str, t: &Thesaurus) -> NormalizedName {
        Normalizer::default().normalize(name, t)
    }

    #[test]
    fn ns_identical_names_is_one() {
        let t = Thesaurus::with_default_stopwords();
        let n1 = normalize("City", &t);
        let n2 = normalize("city", &t);
        let v = ns_elements(&n1, &n2, &t, &TokenTypeWeights::default(), &AffixConfig::default());
        assert_eq!(v, 1.0);
    }

    #[test]
    fn ns_qty_vs_quantity_via_expansion() {
        let t = paper_thesaurus();
        let n1 = normalize("Qty", &t);
        let n2 = normalize("Quantity", &t);
        let v = ns_elements(&n1, &n2, &t, &TokenTypeWeights::default(), &AffixConfig::default());
        assert_eq!(v, 1.0);
    }

    #[test]
    fn ns_pobillto_vs_invoiceto() {
        // {purchase, order, bill} vs {invoice} (common word "to" weight 0):
        // bill↔invoice = 1.0, purchase/order unmatched → (1+1)/4 = 0.5.
        let t = paper_thesaurus();
        let n1 = normalize("POBillTo", &t);
        let n2 = normalize("InvoiceTo", &t);
        let v = ns_elements(&n1, &n2, &t, &TokenTypeWeights::default(), &AffixConfig::default());
        assert!((v - 0.5).abs() < 1e-9, "{v}");
    }

    #[test]
    fn ns_deliverto_vs_pobillto_zero() {
        let t = paper_thesaurus();
        let n1 = normalize("POBillTo", &t);
        let n2 = normalize("DeliverTo", &t);
        let v = ns_elements(&n1, &n2, &t, &TokenTypeWeights::default(), &AffixConfig::default());
        assert_eq!(v, 0.0);
    }

    #[test]
    fn ns_token_sets_empty_cases() {
        let t = Thesaurus::empty();
        let a = AffixConfig::default();
        assert_eq!(ns_token_sets(&[], &[], &t, &a), 0.0);
        let tok = Token::new("x", TokenType::Content);
        assert_eq!(ns_token_sets(&[&tok], &[], &t, &a), 0.0);
    }

    fn customer_schema(name: &str, suffix: &str) -> Schema {
        let mut b = SchemaBuilder::new(name);
        let c = b.structured(b.root(), "Customer", ElementKind::Class);
        b.atomic(c, format!("CustomerNumber{suffix}"), ElementKind::Attribute, DataType::Int);
        b.atomic(c, format!("Name{suffix}"), ElementKind::Attribute, DataType::String);
        b.atomic(c, format!("Address{suffix}"), ElementKind::Attribute, DataType::String);
        b.build().unwrap()
    }

    #[test]
    fn analyze_identical_schemas_diagonal_is_one() {
        let s1 = customer_schema("Schema1", "");
        let s2 = customer_schema("Schema2", "");
        let t = Thesaurus::with_default_stopwords();
        let a = analyze(&s1, &s2, &t, &cfg());
        let name1 = s1.find("Name").unwrap();
        let name2 = s2.find("Name").unwrap();
        assert_eq!(a.lsim.get(name1, name2), 1.0);
        let addr2 = s2.find("Address").unwrap();
        // Name vs Address share the container and text categories but
        // have no token overlap.
        assert_eq!(a.lsim.get(name1, addr2), 0.0);
    }

    #[test]
    fn analyze_prefixed_names_still_similar() {
        // §9.1 test 3: Address → StreetAddress, Name → CustomerName.
        let s1 = customer_schema("Schema1", "");
        let mut b = SchemaBuilder::new("Schema2");
        let c = b.structured(b.root(), "Customer", ElementKind::Class);
        b.atomic(c, "CustomerNumber", ElementKind::Attribute, DataType::Int);
        b.atomic(c, "CustomerName", ElementKind::Attribute, DataType::String);
        b.atomic(c, "StreetAddress", ElementKind::Attribute, DataType::String);
        let s2 = b.build().unwrap();
        let t = Thesaurus::with_default_stopwords();
        let a = analyze(&s1, &s2, &t, &cfg());
        let name1 = s1.find("Name").unwrap();
        let cname2 = s2.find("CustomerName").unwrap();
        // {name} vs {customer, name}: (1 + (1+0))/3 = 2/3.
        let v = a.lsim.get(name1, cname2);
        assert!(v > 0.6, "lsim(Name, CustomerName) = {v}");
        let addr1 = s1.find("Address").unwrap();
        let saddr2 = s2.find("StreetAddress").unwrap();
        assert!(a.lsim.get(addr1, saddr2) > 0.6);
    }

    #[test]
    fn analyze_prunes_incompatible_categories() {
        let s1 = customer_schema("Schema1", "");
        let s2 = customer_schema("Schema2", "");
        let t = Thesaurus::with_default_stopwords();
        let a = analyze(&s1, &s2, &t, &cfg());
        assert!(a.compared_pairs < a.total_pairs);
        assert!(a.pruning_ratio() > 0.0);
        assert!(a.compatible_category_pairs > 0);
    }

    #[test]
    fn lsim_scaled_by_category_similarity() {
        // Same leaf names under differently-named but related containers.
        let mut b1 = SchemaBuilder::new("S1");
        let po = b1.structured(b1.root(), "POBillTo", ElementKind::XmlElement);
        b1.atomic(po, "City", ElementKind::XmlElement, DataType::String);
        let s1 = b1.build().unwrap();
        let mut b2 = SchemaBuilder::new("S2");
        let inv = b2.structured(b2.root(), "InvoiceTo", ElementKind::XmlElement);
        b2.atomic(inv, "City", ElementKind::XmlElement, DataType::String);
        let s2 = b2.build().unwrap();
        let t = paper_thesaurus();
        let a = analyze(&s1, &s2, &t, &cfg());
        let c1 = s1.find("City").unwrap();
        let c2 = s2.find("City").unwrap();
        // ns(City, City) = 1, categories: text/text compatible at 1.0 →
        // lsim = 1.
        assert_eq!(a.lsim.get(c1, c2), 1.0);
    }

    #[test]
    fn interned_engine_matches_naive_reference() {
        // Thesaurus-heavy pair exercising expansion, synonyms, concepts
        // and the affix fallback; the dedicated proptest suite
        // (tests/linguistic_equivalence.rs) covers randomized inputs.
        let s1 = customer_schema("Schema1", "");
        let mut b = SchemaBuilder::new("Schema2");
        let c = b.structured(b.root(), "Client", ElementKind::Class);
        b.atomic(c, "CustomerNum", ElementKind::Attribute, DataType::Int);
        b.atomic(c, "CustomerName", ElementKind::Attribute, DataType::String);
        b.atomic(c, "StreetAddress", ElementKind::Attribute, DataType::String);
        let s2 = b.build().unwrap();
        let t = paper_thesaurus();
        let fast = analyze(&s1, &s2, &t, &cfg());
        let naive = analyze_naive(&s1, &s2, &t, &cfg());
        assert_eq!(fast.lsim.matrix().max_abs_diff(naive.lsim.matrix()), 0.0);
        assert_eq!(fast.compared_pairs, naive.compared_pairs);
        assert_eq!(fast.compatible_category_pairs, naive.compatible_category_pairs);
        // only the interned engine reports memo diagnostics
        assert!(fast.vocab_size > 0);
        assert!(fast.distinct_token_pairs > 0);
        assert_eq!(naive.vocab_size, 0);
    }

    #[test]
    fn ns_token_ids_matches_ns_token_sets() {
        let t = paper_thesaurus();
        let affix = AffixConfig::default();
        let mk = |s: &str, ty: TokenType| Token::new(s, ty);
        let toks1 = [mk("purchase", TokenType::Content), mk("bill", TokenType::Content)];
        let toks2 = [mk("invoice", TokenType::Content), mk("4", TokenType::Number)];
        let refs1: Vec<&Token> = toks1.iter().collect();
        let refs2: Vec<&Token> = toks2.iter().collect();
        let direct = ns_token_sets(&refs1, &refs2, &t, &affix);
        let mut table = TokenTable::new();
        let ids1: Vec<TokenId> = toks1.iter().map(|tk| table.intern_token(tk)).collect();
        let ids2: Vec<TokenId> = toks2.iter().map(|tk| table.intern_token(tk)).collect();
        let mut cache = TokenSimCache::new(&table, &t, &affix);
        let cached = ns_token_ids(&ids1, &ids2, &mut cache);
        assert_eq!(direct.to_bits(), cached.to_bits());
    }

    #[test]
    fn initial_mapping_override() {
        let s1 = customer_schema("Schema1", "");
        let s2 = customer_schema("Schema2", "");
        let t = Thesaurus::empty();
        let mut a = analyze(&s1, &s2, &t, &cfg());
        let x = s1.find("Name").unwrap();
        let y = s2.find("Address").unwrap();
        a.lsim.set(x, y, 5.0); // clamps
        assert_eq!(a.lsim.get(x, y), 1.0);
    }
}
