//! # cupid-core — the Cupid schema matching algorithm
//!
//! From-scratch implementation of *Generic Schema Matching with Cupid*
//! (Madhavan, Bernstein, Rahm; VLDB 2001 / MSR-TR-2001-58). The match
//! computes similarity coefficients between elements of two schemas in
//! two phases and then deduces a mapping:
//!
//! 1. **Linguistic matching** (§5, [`linguistic`]): names are normalized
//!    (tokenization, expansion, elimination, concept tagging), elements
//!    are clustered into categories to prune comparisons, and the
//!    linguistic similarity coefficient `lsim` is computed for element
//!    pairs from compatible categories.
//! 2. **Structure matching** (§6, [`treematch`]): the TreeMatch algorithm
//!    computes a structural similarity `ssim` over the two schema trees,
//!    biased toward leaves, with mutual reinforcement between ancestor
//!    and leaf similarities.
//! 3. **Mapping generation** (§7, [`mapping`]): pairs with maximal
//!    weighted similarity `wsim = w_struct·ssim + (1−w_struct)·lsim` above
//!    `th_accept` become mapping elements.
//!
//! For corpus-scale workloads, [`session`] adds batch matching on top
//! of the same engine: per-schema precompute shared across pairs, one
//! persistent token-similarity memo, and sharded multi-threaded pair
//! execution with bit-identical results (DESIGN.md §7; see
//! [`Cupid::session`] and [`Cupid::match_corpus`]).
//!
//! The entry point is [`Cupid`] in [`matcher`]:
//!
//! ```
//! use cupid_core::Cupid;
//! use cupid_lexical::Thesaurus;
//! use cupid_model::{SchemaBuilder, ElementKind, DataType};
//!
//! let mut b = SchemaBuilder::new("PO");
//! let item = b.structured(b.root(), "Item", ElementKind::XmlElement);
//! b.atomic(item, "Qty", ElementKind::XmlAttribute, DataType::Int);
//! let po = b.build().unwrap();
//!
//! let mut b = SchemaBuilder::new("Order");
//! let item = b.structured(b.root(), "Item", ElementKind::XmlElement);
//! b.atomic(item, "Quantity", ElementKind::XmlAttribute, DataType::Int);
//! let order = b.build().unwrap();
//!
//! let thesaurus = Thesaurus::parse("abbrev Qty = quantity").unwrap();
//! let outcome = Cupid::new(thesaurus).match_schemas(&po, &order).unwrap();
//! assert_eq!(outcome.leaf_mappings.len(), 1);
//! assert_eq!(outcome.leaf_mappings[0].source_path, "PO.Item.Qty");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod categories;
pub mod config;
pub mod explain;
pub mod lazy;
pub mod learning;
pub mod linguistic;
pub mod mapping;
pub mod matcher;
pub mod session;
pub mod simmatrix;
pub mod treematch;
pub mod types_compat;

pub use config::{CupidConfig, TokenTypeWeights};
pub use explain::{Explanation, PairExplanation, StructuralContext, TokenPairScore};
pub use learning::{Proposal, ThesaurusLearner};
pub use linguistic::{LinguisticAnalysis, LsimTable};
pub use mapping::{Cardinality, MappingElement};
pub use matcher::{CorpusMatch, Cupid, MatchOutcome};
pub use session::{MatchSession, MatchSummary, PreparedSchema, SchemaId, SessionStats};
pub use simmatrix::SimMatrix;
pub use treematch::TreeMatchResult;
pub use types_compat::TypeCompatibility;
