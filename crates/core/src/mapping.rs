//! Mapping generation (§7).
//!
//! *"For each leaf element t in the target schema, if the leaf element s
//! in the source schema with highest weighted similarity to t is
//! acceptable (wsim(s,t) ≥ thaccept), then a mapping element from s to t
//! is returned. This resulting mapping may be 1:n, since a source element
//! may map to many target elements."*
//!
//! Non-leaf mappings use the recomputed similarities (the second
//! post-order traversal of §7, performed in
//! `Workspace::final_matrices`).
//!
//! The paper notes the exact cardinality policy belongs to a
//! tool-specific generator; both the paper's naïve 1:n generator and a
//! greedy 1:1 generator are provided.

use std::fmt;

use cupid_model::{NodeId, SchemaTree};

use crate::config::CupidConfig;
use crate::linguistic::LsimTable;
use crate::simmatrix::SimMatrix;
use crate::treematch::TreeMatchResult;

/// Mapping cardinality policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cardinality {
    /// The paper's naïve generator: best source per target, sources may
    /// repeat.
    OneToN,
    /// Greedy 1:1 assignment by descending similarity.
    OneToOne,
}

/// One mapping element: a correspondence between a source and a target
/// schema-tree node (i.e. element-in-context), with its similarity
/// coefficients.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingElement {
    /// Source node.
    pub source: NodeId,
    /// Target node.
    pub target: NodeId,
    /// Source context path (e.g. `PO.POBillTo.City`).
    pub source_path: String,
    /// Target context path.
    pub target_path: String,
    /// Weighted similarity that justified the mapping.
    pub wsim: f64,
    /// Structural component.
    pub ssim: f64,
    /// Linguistic component.
    pub lsim: f64,
}

impl fmt::Display for MappingElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {}  (wsim {:.3}, ssim {:.3}, lsim {:.3})",
            self.source_path, self.target_path, self.wsim, self.ssim, self.lsim
        )
    }
}

fn make_element(
    t1: &SchemaTree,
    t2: &SchemaTree,
    res: &TreeMatchResult,
    lsim: &LsimTable,
    s: NodeId,
    t: NodeId,
) -> MappingElement {
    MappingElement {
        source: s,
        target: t,
        source_path: t1.path(s).to_string(),
        target_path: t2.path(t).to_string(),
        wsim: res.wsim.get(s.index(), t.index()),
        ssim: res.ssim.get(s.index(), t.index()),
        lsim: lsim.get(t1.node(s).element, t2.node(t).element),
    }
}

/// Indices of nodes matching a predicate.
fn nodes_where(tree: &SchemaTree, leaf: bool) -> Vec<NodeId> {
    tree.iter().filter(|(_, n)| n.is_leaf() == leaf).map(|(id, _)| id).collect()
}

/// Select mappings among the given candidate node sets from a similarity
/// matrix, honoring the cardinality policy.
fn select(
    t1: &SchemaTree,
    t2: &SchemaTree,
    res: &TreeMatchResult,
    lsim: &LsimTable,
    wsim: &SimMatrix,
    sources: &[NodeId],
    targets: &[NodeId],
    cfg: &CupidConfig,
    cardinality: Cardinality,
) -> Vec<MappingElement> {
    // Saturated similarities (leaf ssim clamps at 1.0) can tie. Ties are
    // broken by *context consistency*: prefer the source whose parent is
    // more similar to the target's parent — the similarity the ancestors
    // accumulated is exactly Cupid's context evidence.
    let parent_wsim = |s: NodeId, t: NodeId| -> f64 {
        match (t1.node(s).parents.first(), t2.node(t).parents.first()) {
            (Some(&ps), Some(&pt)) => wsim.get(ps.index(), pt.index()),
            _ => 0.0,
        }
    };
    let mut out = Vec::new();
    match cardinality {
        Cardinality::OneToN => {
            for &t in targets {
                let mut best: Option<(NodeId, f64, f64)> = None;
                for &s in sources {
                    let v = wsim.get(s.index(), t.index());
                    if v < cfg.th_accept {
                        continue;
                    }
                    let pw = parent_wsim(s, t);
                    match best {
                        Some((_, bv, bpw)) if bv > v || (bv == v && bpw >= pw) => {}
                        _ => best = Some((s, v, pw)),
                    }
                }
                if let Some((s, _, _)) = best {
                    out.push(make_element(t1, t2, res, lsim, s, t));
                }
            }
        }
        Cardinality::OneToOne => {
            let mut pairs: Vec<(NodeId, NodeId, f64)> = Vec::new();
            for &s in sources {
                for &t in targets {
                    let v = wsim.get(s.index(), t.index());
                    if v >= cfg.th_accept {
                        pairs.push((s, t, v));
                    }
                }
            }
            // Descending similarity. Saturated similarities tie often, so
            // break ties by preferring pairs at comparable nesting depth
            // (Item↔Item over Item↔Items), then by indices for
            // determinism.
            pairs.sort_by(|a, b| {
                let depth_diff = |p: &(NodeId, NodeId, f64)| {
                    (t1.depth(p.0) as i64 - t2.depth(p.1) as i64).unsigned_abs()
                };
                b.2.partial_cmp(&a.2)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(depth_diff(a).cmp(&depth_diff(b)))
                    .then(
                        parent_wsim(b.0, b.1)
                            .partial_cmp(&parent_wsim(a.0, a.1))
                            .unwrap_or(std::cmp::Ordering::Equal),
                    )
                    .then(a.0.cmp(&b.0))
                    .then(a.1.cmp(&b.1))
            });
            let mut used_s = vec![false; t1.len()];
            let mut used_t = vec![false; t2.len()];
            for (s, t, _) in pairs {
                if used_s[s.index()] || used_t[t.index()] {
                    continue;
                }
                used_s[s.index()] = true;
                used_t[t.index()] = true;
                out.push(make_element(t1, t2, res, lsim, s, t));
            }
            out.sort_by_key(|m| m.target.index());
        }
    }
    out
}

/// Leaf-level mapping generation (§7).
pub fn leaf_mappings(
    t1: &SchemaTree,
    t2: &SchemaTree,
    res: &TreeMatchResult,
    lsim: &LsimTable,
    cfg: &CupidConfig,
    cardinality: Cardinality,
) -> Vec<MappingElement> {
    let sources = nodes_where(t1, true);
    let targets = nodes_where(t2, true);
    select(t1, t2, res, lsim, &res.wsim, &sources, &targets, cfg, cardinality)
}

/// Non-leaf mapping generation (§7): uses the recomputed similarities of
/// the second traversal, already present in [`TreeMatchResult::wsim`].
pub fn nonleaf_mappings(
    t1: &SchemaTree,
    t2: &SchemaTree,
    res: &TreeMatchResult,
    lsim: &LsimTable,
    cfg: &CupidConfig,
    cardinality: Cardinality,
) -> Vec<MappingElement> {
    let sources = nodes_where(t1, false);
    let targets = nodes_where(t2, false);
    select(t1, t2, res, lsim, &res.wsim, &sources, &targets, cfg, cardinality)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linguistic::analyze;
    use crate::treematch::tree_match;
    use cupid_lexical::Thesaurus;
    use cupid_model::{expand, DataType, ElementKind, ExpandOptions, Schema, SchemaBuilder};

    fn schema(name: &str, attrs: &[(&str, DataType)]) -> Schema {
        let mut b = SchemaBuilder::new(name);
        let c = b.structured(b.root(), "Customer", ElementKind::Class);
        for (a, dt) in attrs {
            b.atomic(c, *a, ElementKind::Attribute, *dt);
        }
        b.build().unwrap()
    }

    struct Fixture {
        t1: cupid_model::SchemaTree,
        t2: cupid_model::SchemaTree,
        res: TreeMatchResult,
        lsim: LsimTable,
        cfg: CupidConfig,
    }

    fn fixture(s1: &Schema, s2: &Schema) -> Fixture {
        let cfg = CupidConfig::default();
        let thesaurus = Thesaurus::with_default_stopwords();
        let t1 = expand(s1, &ExpandOptions::none()).unwrap();
        let t2 = expand(s2, &ExpandOptions::none()).unwrap();
        let la = analyze(s1, s2, &thesaurus, &cfg);
        let res = tree_match(&t1, &t2, &la.lsim, &cfg);
        Fixture { t1, t2, res, lsim: la.lsim, cfg }
    }

    #[test]
    fn identical_schemas_map_one_to_one() {
        let attrs = [
            ("CustomerNumber", DataType::Int),
            ("Name", DataType::String),
            ("Address", DataType::String),
        ];
        let f = fixture(&schema("A", &attrs), &schema("B", &attrs));
        let maps = leaf_mappings(&f.t1, &f.t2, &f.res, &f.lsim, &f.cfg, Cardinality::OneToN);
        assert_eq!(maps.len(), 3);
        for m in &maps {
            let s_name = m.source_path.rsplit('.').next().unwrap();
            let t_name = m.target_path.rsplit('.').next().unwrap();
            assert_eq!(s_name, t_name, "wrong pairing: {m}");
        }
    }

    #[test]
    fn one_to_n_allows_repeated_sources() {
        // Source has one "Phone"; target has Phone + Telefax (both
        // phone-shaped strings in the same container, names overlapping
        // nothing). Use identical names to force 1:n.
        let s1 = schema("A", &[("Phone", DataType::String)]);
        let s2 = schema("B", &[("Phone", DataType::String), ("Phone2", DataType::String)]);
        let f = fixture(&s1, &s2);
        let maps = leaf_mappings(&f.t1, &f.t2, &f.res, &f.lsim, &f.cfg, Cardinality::OneToN);
        // Phone maps to both Phone and Phone2 (same best source).
        assert_eq!(maps.len(), 2);
        assert_eq!(maps[0].source_path, maps[1].source_path);

        let one = leaf_mappings(&f.t1, &f.t2, &f.res, &f.lsim, &f.cfg, Cardinality::OneToOne);
        assert_eq!(one.len(), 1, "1:1 must not reuse the source");
        assert_eq!(one[0].target_path, "B.Customer.Phone");
    }

    #[test]
    fn threshold_gates_mappings() {
        let s1 = schema("A", &[("Alpha", DataType::Int)]);
        let s2 = schema("B", &[("Omega", DataType::Date)]);
        let f = fixture(&s1, &s2);
        let maps = leaf_mappings(&f.t1, &f.t2, &f.res, &f.lsim, &f.cfg, Cardinality::OneToN);
        assert!(maps.is_empty(), "dissimilar leaves must not map: {maps:?}");
    }

    #[test]
    fn nonleaf_mappings_cover_classes() {
        let attrs = [("Name", DataType::String), ("Address", DataType::String)];
        let f = fixture(&schema("A", &attrs), &schema("B", &attrs));
        let maps = nonleaf_mappings(&f.t1, &f.t2, &f.res, &f.lsim, &f.cfg, Cardinality::OneToN);
        // Customer -> Customer and root -> root.
        let paths: Vec<(&str, &str)> =
            maps.iter().map(|m| (m.source_path.as_str(), m.target_path.as_str())).collect();
        assert!(paths.contains(&("A.Customer", "B.Customer")), "{paths:?}");
    }

    #[test]
    fn mapping_elements_report_components() {
        let attrs = [("Name", DataType::String)];
        let f = fixture(&schema("A", &attrs), &schema("B", &attrs));
        let maps = leaf_mappings(&f.t1, &f.t2, &f.res, &f.lsim, &f.cfg, Cardinality::OneToN);
        let m = &maps[0];
        assert!(m.wsim > 0.0 && m.lsim > 0.0 && m.ssim > 0.0);
        let shown = m.to_string();
        assert!(shown.contains("A.Customer.Name") && shown.contains("wsim"));
    }
}
