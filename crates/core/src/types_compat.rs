//! The data-type compatibility table (§6).
//!
//! *"The structural similarity of two leaves is initialized to the type
//! compatibility of their corresponding data types. This value ([0,0.5])
//! is a lookup in a compatibility table. Identical data types have a
//! compatibility of 0.5. (A max of 0.5 allows for later increases in
//! structural similarity.)"*
//!
//! Like the paper's prototype — §9.1 notes the tables are *"accessible
//! and tunable in the case of Cupid"* — the table has sensible defaults
//! and per-pair overrides.

use std::collections::HashMap;

use cupid_model::{BroadType, DataType};

/// Tunable data-type compatibility lookup, values in `[0, 0.5]`.
#[derive(Debug, Clone)]
pub struct TypeCompatibility {
    /// Identical data types (paper-mandated 0.5).
    pub identical: f64,
    /// Same broad class (e.g. `Int` vs `Decimal`).
    pub same_broad: f64,
    /// One side is `String`-like: strings can encode almost anything, so
    /// text is mildly compatible with other atomic classes.
    pub text_vs_other: f64,
    /// One side has no type information.
    pub unknown_vs_other: f64,
    /// Unrelated atomic classes (e.g. `Bool` vs `Date`).
    pub unrelated: f64,
    /// Explicit overrides, symmetric (stored in both orders).
    overrides: HashMap<(DataType, DataType), f64>,
}

impl Default for TypeCompatibility {
    fn default() -> Self {
        TypeCompatibility {
            identical: 0.5,
            same_broad: 0.4,
            text_vs_other: 0.25,
            unknown_vs_other: 0.25,
            unrelated: 0.1,
            overrides: HashMap::new(),
        }
    }
}

impl TypeCompatibility {
    /// Write the table's canonical encoding (defaults plus overrides,
    /// sorted by wire code so `HashMap` iteration order can't leak in)
    /// into a fingerprint writer — a component of
    /// [`crate::CupidConfig::fingerprint`].
    pub(crate) fn fingerprint_into(&self, w: &mut cupid_model::WireWriter) {
        use cupid_model::wire::data_type_code;
        for v in [self.identical, self.same_broad, self.text_vs_other, self.unknown_vs_other] {
            w.put_f64(v);
        }
        w.put_f64(self.unrelated);
        let mut overrides: Vec<(u8, u8, f64)> = self
            .overrides
            .iter()
            .map(|(&(a, b), &v)| (data_type_code(a), data_type_code(b), v))
            .collect();
        overrides.sort_by_key(|x| (x.0, x.1));
        w.put_len(overrides.len());
        for (a, b, v) in overrides {
            w.put_u8(a);
            w.put_u8(b);
            w.put_f64(v);
        }
    }

    /// Install a symmetric override for a specific type pair. The value is
    /// clamped into `[0, 0.5]`.
    pub fn set_override(&mut self, a: DataType, b: DataType, value: f64) -> &mut Self {
        let v = value.clamp(0.0, 0.5);
        self.overrides.insert((a, b), v);
        self.overrides.insert((b, a), v);
        self
    }

    /// Compatibility of two atomic data types, in `[0, 0.5]`.
    ///
    /// `Complex` participates too: two structured elements are "type
    /// compatible" at the identical level (their similarity is decided by
    /// structure, not by this seed), while structured-vs-atomic is
    /// incompatible.
    pub fn compat(&self, a: DataType, b: DataType) -> f64 {
        if let Some(&v) = self.overrides.get(&(a, b)) {
            return v;
        }
        if a == b {
            return self.identical;
        }
        let (ba, bb) = (a.broad(), b.broad());
        if ba == BroadType::Complex || bb == BroadType::Complex {
            // structured vs atomic never matches on type
            return if ba == bb { self.identical } else { 0.0 };
        }
        if ba == bb {
            return self.same_broad;
        }
        if ba == BroadType::Unknown || bb == BroadType::Unknown {
            return self.unknown_vs_other;
        }
        if ba == BroadType::Text || bb == BroadType::Text {
            return self.text_vs_other;
        }
        self.unrelated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_types_score_half() {
        let t = TypeCompatibility::default();
        assert_eq!(t.compat(DataType::Int, DataType::Int), 0.5);
        assert_eq!(t.compat(DataType::String, DataType::String), 0.5);
    }

    #[test]
    fn same_broad_class() {
        let t = TypeCompatibility::default();
        assert_eq!(t.compat(DataType::Int, DataType::Decimal), 0.4);
        assert_eq!(t.compat(DataType::Date, DataType::DateTime), 0.4);
        assert_eq!(t.compat(DataType::Money, DataType::Float), 0.4);
    }

    #[test]
    fn canonical_example_2_string_vs_int_telephone() {
        // §9.1 test 2: telephone as string in one schema, integer in the
        // other — must still be matchable (non-zero compatibility).
        let t = TypeCompatibility::default();
        let c = t.compat(DataType::String, DataType::Int);
        assert!(c > 0.0 && c < 0.5);
    }

    #[test]
    fn complex_vs_atomic_incompatible() {
        let t = TypeCompatibility::default();
        assert_eq!(t.compat(DataType::Complex, DataType::Int), 0.0);
        assert_eq!(t.compat(DataType::Complex, DataType::Complex), 0.5);
    }

    #[test]
    fn overrides_win_and_clamp() {
        let mut t = TypeCompatibility::default();
        t.set_override(DataType::Bool, DataType::Int, 0.45);
        assert_eq!(t.compat(DataType::Bool, DataType::Int), 0.45);
        assert_eq!(t.compat(DataType::Int, DataType::Bool), 0.45);
        t.set_override(DataType::Bool, DataType::Date, 9.0);
        assert_eq!(t.compat(DataType::Bool, DataType::Date), 0.5); // clamped
    }

    #[test]
    fn all_values_within_range() {
        let t = TypeCompatibility::default();
        let all = [
            DataType::Unknown,
            DataType::String,
            DataType::Int,
            DataType::Decimal,
            DataType::Float,
            DataType::Money,
            DataType::Bool,
            DataType::Date,
            DataType::Time,
            DataType::DateTime,
            DataType::Binary,
            DataType::Identifier,
            DataType::Enumeration,
            DataType::Complex,
        ];
        for &a in &all {
            for &b in &all {
                let v = t.compat(a, b);
                assert!((0.0..=0.5).contains(&v), "compat({a:?},{b:?}) = {v}");
                assert_eq!(v, t.compat(b, a), "symmetry for ({a:?},{b:?})");
            }
        }
    }
}
