//! Minimal fixed-width bitsets for TreeMatch's strong-link bookkeeping.
//!
//! TreeMatch repeatedly asks *"does leaf x have a strong link to any leaf
//! under node t?"*. With per-leaf strong-link rows and per-node leaf-set
//! masks, that is one word-wise intersection test instead of a nested
//! scan, which keeps the O(n²) node-pair loop tractable on the
//! scalability sweep.

/// A fixed-capacity bitset over `len` bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bits {
    len: usize,
    words: Vec<u64>,
}

impl Bits {
    /// An empty bitset with capacity for `len` bits.
    pub fn new(len: usize) -> Self {
        Bits { len, words: vec![0; len.div_ceil(64)] }
    }

    /// Bit capacity.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Set bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clear bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Read bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// True if the two bitsets share any set bit.
    #[inline]
    pub fn intersects(&self, other: &Bits) -> bool {
        self.words.iter().zip(&other.words).any(|(&a, &b)| a & b != 0)
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of set bits shared with `other`.
    pub fn intersection_count(&self, other: &Bits) -> usize {
        self.words.iter().zip(&other.words).map(|(&a, &b)| (a & b).count_ones() as usize).sum()
    }

    /// Indices of set bits, ascending.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Build from a sorted slice of indices.
    pub fn from_indices(len: usize, indices: &[u32]) -> Self {
        let mut b = Bits::new(len);
        for &i in indices {
            b.set(i as usize);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut b = Bits::new(130);
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1));
        b.clear(64);
        assert!(!b.get(64));
        assert_eq!(b.count(), 2);
    }

    #[test]
    fn intersects_across_words() {
        let mut a = Bits::new(200);
        let mut b = Bits::new(200);
        a.set(150);
        assert!(!a.intersects(&b));
        b.set(150);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection_count(&b), 1);
    }

    #[test]
    fn ones_iterates_ascending() {
        let b = Bits::from_indices(100, &[3, 64, 99]);
        let v: Vec<usize> = b.ones().collect();
        assert_eq!(v, [3, 64, 99]);
    }

    #[test]
    fn empty_and_zero_len() {
        let b = Bits::new(0);
        assert!(b.is_empty());
        assert_eq!(b.ones().count(), 0);
        let b = Bits::new(65);
        assert!(b.is_empty());
    }
}
