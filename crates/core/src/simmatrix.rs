//! Dense similarity matrices.
//!
//! All of Cupid's similarity coefficients (`lsim`, `ssim`, `wsim`) live in
//! dense row-major `f64` matrices indexed by arena indices. Schemas in the
//! paper's experiments have tens to hundreds of elements, and even the
//! scalability sweep (thousands of nodes) fits comfortably; density buys
//! branch-free lookups in TreeMatch's inner loops.

/// A dense row-major matrix of similarity coefficients.
#[derive(Debug, Clone, PartialEq)]
pub struct SimMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl SimMatrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        SimMatrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Read entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Write entry `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Multiply entry `(i, j)` by `factor`, clamping into `[0, 1]`.
    #[inline]
    pub fn scale_clamped(&mut self, i: usize, j: usize, factor: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        let cell = &mut self.data[i * self.cols + j];
        *cell = (*cell * factor).clamp(0.0, 1.0);
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Maximum entry in row `i` with its column, `None` for empty rows.
    ///
    /// The sweep is a branchless select chain — the update predicate is
    /// `!(best >= v)`, the exact condition of the old `match` fold, so
    /// first-index-on-ties and NaN handling (a NaN `best` loses to
    /// anything, a NaN `v` never wins over a non-NaN `best`) are
    /// bit-for-bit preserved while the loop body stays free of
    /// unpredictable branches.
    // The negated comparison is the point: `partial_cmp` would change
    // which side NaN falls on.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    #[inline]
    pub fn row_max(&self, i: usize) -> Option<(usize, f64)> {
        let (&first, rest) = self.row(i).split_first()?;
        let mut best_j = 0usize;
        let mut best_v = first;
        for (off, &v) in rest.iter().enumerate() {
            let take = !(best_v >= v);
            best_j = if take { off + 1 } else { best_j };
            best_v = if take { v } else { best_v };
        }
        Some((best_j, best_v))
    }

    /// Maximum entry in column `j` with its row, `None` for empty columns.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    #[inline]
    pub fn col_max(&self, j: usize) -> Option<(usize, f64)> {
        if self.rows == 0 || self.cols == 0 {
            return None;
        }
        // Walk rows as slices (one strided load per row) instead of
        // recomputing `i * cols + j` bounds-checked per cell; same
        // branchless `!(best >= v)` select chain as [`SimMatrix::row_max`].
        let mut best_i = 0usize;
        let mut best_v = self.data[j];
        for (i, row) in self.data.chunks_exact(self.cols).enumerate().skip(1) {
            let v = row[j];
            let take = !(best_v >= v);
            best_i = if take { i } else { best_i };
            best_v = if take { v } else { best_v };
        }
        Some((best_i, best_v))
    }

    /// Iterate over all `(i, j, value)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        let cols = self.cols;
        self.data.iter().enumerate().map(move |(k, &v)| (k / cols, k % cols, v))
    }

    /// Maximum absolute difference to another matrix of the same shape.
    /// Used by tests asserting eager/lazy expansion equivalence.
    pub fn max_abs_diff(&self, other: &SimMatrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_scale() {
        let mut m = SimMatrix::zeros(2, 3);
        m.set(1, 2, 0.5);
        assert_eq!(m.get(1, 2), 0.5);
        m.scale_clamped(1, 2, 1.2);
        assert!((m.get(1, 2) - 0.6).abs() < 1e-12);
        m.scale_clamped(1, 2, 10.0);
        assert_eq!(m.get(1, 2), 1.0); // clamped
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn row_and_col_max_prefer_first_on_ties() {
        let mut m = SimMatrix::zeros(2, 3);
        m.set(0, 1, 0.7);
        m.set(0, 2, 0.7);
        assert_eq!(m.row_max(0), Some((1, 0.7)));
        m.set(1, 1, 0.7);
        assert_eq!(m.col_max(1), Some((0, 0.7)));
    }

    /// The pre-restructuring scalar fold `row_max`/`col_max` were
    /// defined by: update `best` whenever `!(best >= v)`.
    fn reference_max(values: impl Iterator<Item = f64>) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (i, v) in values.enumerate() {
            match best {
                Some((_, bv)) if bv >= v => {}
                _ => best = Some((i, v)),
            }
        }
        best
    }

    #[test]
    fn max_sweeps_match_scalar_reference_including_nan() {
        // Deterministic mix of ordinary values, ties, NaN and -0.0 —
        // the branchless sweep must agree with the scalar fold on
        // index *and* bit pattern everywhere.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            match state % 8 {
                0 => f64::NAN,
                1 => -0.0,
                2 => 0.0,
                3 => 0.7, // frequent value → ties
                _ => (state % 1000) as f64 / 1000.0,
            }
        };
        for (rows, cols) in [(1, 1), (3, 5), (7, 4), (16, 16)] {
            let mut m = SimMatrix::zeros(rows, cols);
            for i in 0..rows {
                for j in 0..cols {
                    m.set(i, j, next());
                }
            }
            for i in 0..rows {
                let got = m.row_max(i);
                let want = reference_max(m.row(i).iter().copied());
                assert_eq!(got.map(|(j, v)| (j, v.to_bits())), want.map(|(j, v)| (j, v.to_bits())));
            }
            for j in 0..cols {
                let got = m.col_max(j);
                let want = reference_max((0..rows).map(|i| m.get(i, j)));
                assert_eq!(got.map(|(i, v)| (i, v.to_bits())), want.map(|(i, v)| (i, v.to_bits())));
            }
        }
    }

    #[test]
    fn iter_yields_all_entries() {
        let mut m = SimMatrix::zeros(2, 2);
        m.set(0, 1, 0.25);
        let entries: Vec<(usize, usize, f64)> = m.iter().collect();
        assert_eq!(entries.len(), 4);
        assert!(entries.contains(&(0, 1, 0.25)));
    }

    #[test]
    fn max_abs_diff() {
        let mut a = SimMatrix::zeros(2, 2);
        let mut b = SimMatrix::zeros(2, 2);
        a.set(0, 0, 0.5);
        b.set(0, 0, 0.75);
        assert!((a.max_abs_diff(&b) - 0.25).abs() < 1e-12);
        assert_eq!(a.max_abs_diff(&a), 0.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn max_abs_diff_shape_mismatch_panics() {
        let a = SimMatrix::zeros(2, 2);
        let b = SimMatrix::zeros(2, 3);
        let _ = a.max_abs_diff(&b);
    }
}
