//! Categorization (§5.2).
//!
//! *"Cupid clusters schema elements belonging to the two schemas into
//! categories. A category is a group of elements that can be identified
//! by a set of keywords, which are derived from concepts, data types, and
//! element names. … The purpose of categorization is to reduce the number
//! of element-to-element comparisons."*
//!
//! Three category sources, exactly as the paper lists them:
//! * **Concept tagging** — a category per unique concept tag;
//! * **Data types** — a category per broad data type (keyword `Number`,
//!   `Text`, …);
//! * **Container** — a category per containing element (keyword = the
//!   container's name tokens): `Street` and `City` contained by `Address`
//!   form a category with keyword `Address`.
//!
//! Each element may belong to multiple categories. Categories are built
//! per schema; compatibility across schemas is decided by name similarity
//! of the keyword sets (threshold `thns`) in [`crate::linguistic`].

use std::collections::HashMap;

use cupid_lexical::{NormalizedName, Token, TokenType};
use cupid_model::wire::{broad_type_code, broad_type_from_code};
use cupid_model::{BroadType, ElementId, ElementKind, Schema, WireError, WireReader, WireWriter};

/// Identity of a category within one schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CategoryKey {
    /// A concept tag (canonical concept name).
    Concept(String),
    /// A broad data type.
    Broad(BroadType),
    /// A containing element.
    Container(ElementId),
}

/// One category: keywords plus member elements.
#[derive(Debug, Clone)]
pub struct Category {
    /// What defines this category.
    pub key: CategoryKey,
    /// Keyword token set used for cross-schema compatibility checks.
    pub keywords: NormalizedName,
    /// Member elements.
    pub members: Vec<ElementId>,
}

/// All categories of one schema, with the element → category index.
#[derive(Debug, Clone, Default)]
pub struct SchemaCategories {
    /// The categories, in creation order.
    pub categories: Vec<Category>,
    /// Per element: indices into `categories`.
    pub element_categories: Vec<Vec<u32>>,
}

impl SchemaCategories {
    /// Categories an element belongs to.
    pub fn of(&self, e: ElementId) -> &[u32] {
        &self.element_categories[e.index()]
    }

    /// Encode the categories (snapshot support; DESIGN.md §8). `vocab`
    /// scopes the keyword names' interned ids on decode.
    pub fn write_wire(&self, w: &mut WireWriter) {
        w.put_len(self.categories.len());
        for c in &self.categories {
            match &c.key {
                CategoryKey::Concept(name) => {
                    w.put_u8(0);
                    w.put_str(name);
                }
                CategoryKey::Broad(b) => {
                    w.put_u8(1);
                    w.put_u8(broad_type_code(*b));
                }
                CategoryKey::Container(e) => {
                    w.put_u8(2);
                    w.put_u32(e.index() as u32);
                }
            }
            c.keywords.write_wire(w);
            w.put_len(c.members.len());
            for m in &c.members {
                w.put_u32(m.index() as u32);
            }
        }
        w.put_len(self.element_categories.len());
        for cs in &self.element_categories {
            w.put_len(cs.len());
            for &c in cs {
                w.put_u32(c);
            }
        }
    }

    /// Decode categories written by [`SchemaCategories::write_wire`].
    pub fn read_wire(r: &mut WireReader<'_>, vocab: usize) -> Result<SchemaCategories, WireError> {
        let nc = r.get_len()?;
        let mut categories = Vec::with_capacity(nc);
        for _ in 0..nc {
            let key = match r.get_u8()? {
                0 => CategoryKey::Concept(r.get_str()?),
                1 => CategoryKey::Broad(
                    broad_type_from_code(r.get_u8()?)
                        .ok_or_else(|| r.err("unknown broad type code"))?,
                ),
                2 => CategoryKey::Container(ElementId::from_index(r.get_u32()? as usize)),
                c => return Err(r.err(format!("unknown category key code {c}"))),
            };
            let keywords = NormalizedName::read_wire(r, vocab)?;
            let nm = r.get_len()?;
            let mut members = Vec::with_capacity(nm);
            for _ in 0..nm {
                members.push(ElementId::from_index(r.get_u32()? as usize));
            }
            categories.push(Category { key, keywords, members });
        }
        let ne = r.get_len()?;
        let mut element_categories = Vec::with_capacity(ne);
        for _ in 0..ne {
            let n = r.get_len()?;
            let mut cs = Vec::with_capacity(n);
            for _ in 0..n {
                let c = r.get_u32()?;
                if c as usize >= nc {
                    return Err(r.err(format!("category index {c} out of bounds ({nc})")));
                }
                cs.push(c);
            }
            element_categories.push(cs);
        }
        // Element ids inside the categories are only checkable now that
        // the element count is known; without this, a crafted snapshot
        // could smuggle out-of-range members into `pair_lsim`'s matrix
        // writes.
        for c in &categories {
            if let CategoryKey::Container(e) = c.key {
                if e.index() >= ne {
                    return Err(r.err(format!("container id {e} out of bounds ({ne} elements)")));
                }
            }
            for &m in &c.members {
                if m.index() >= ne {
                    return Err(r.err(format!("member id {m} out of bounds ({ne} elements)")));
                }
            }
        }
        Ok(SchemaCategories { categories, element_categories })
    }
}

fn keyword_name(text: &str) -> NormalizedName {
    NormalizedName {
        tokens: vec![Token::new(text, TokenType::Content)],
        ..NormalizedName::default()
    }
}

/// Elements that should be linguistically matched. Keys and
/// referential-constraint reifications are skipped: *"We may … choose not
/// to linguistically match certain elements, e.g. those with no
/// significant name, such as keys"* (§8.2). Views keep their (meaningful)
/// names. Type definitions are never matched directly — their contexts
/// are — but they still serve as containers.
pub fn is_linguistically_comparable(schema: &Schema, e: ElementId) -> bool {
    let elem = schema.element(e);
    match elem.kind {
        ElementKind::Key | ElementKind::ForeignKey => false,
        ElementKind::View => true,
        ElementKind::TypeDef => false,
        _ => !elem.not_instantiated,
    }
}

/// Build the categories of one schema. `names[e]` must hold the
/// normalized name of every element (including non-comparable ones, whose
/// names serve as container keywords).
pub fn categorize(schema: &Schema, names: &[NormalizedName]) -> SchemaCategories {
    assert_eq!(names.len(), schema.len(), "one normalized name per element");
    let mut out = SchemaCategories {
        categories: Vec::new(),
        element_categories: vec![Vec::new(); schema.len()],
    };
    let mut index: HashMap<CategoryKey, u32> = HashMap::new();

    let join = |out: &mut SchemaCategories,
                index: &mut HashMap<CategoryKey, u32>,
                key: CategoryKey,
                keywords: NormalizedName,
                member: ElementId| {
        let ci = *index.entry(key.clone()).or_insert_with(|| {
            out.categories.push(Category { key, keywords, members: Vec::new() });
            (out.categories.len() - 1) as u32
        });
        out.categories[ci as usize].members.push(member);
        out.element_categories[member.index()].push(ci);
    };

    for (e, elem) in schema.iter() {
        if !is_linguistically_comparable(schema, e) {
            continue;
        }
        // Concept categories.
        for concept in &names[e.index()].concepts {
            join(
                &mut out,
                &mut index,
                CategoryKey::Concept(concept.clone()),
                keyword_name(concept),
                e,
            );
        }
        // Broad data-type category.
        let broad = elem.data_type.broad();
        join(&mut out, &mut index, CategoryKey::Broad(broad), keyword_name(broad.keyword()), e);
        // Container category: keyed by the containing element; keywords
        // are the container's name tokens.
        if let Some(parent) = schema.parent(e) {
            join(
                &mut out,
                &mut index,
                CategoryKey::Container(parent),
                names[parent.index()].clone(),
                e,
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cupid_lexical::{Normalizer, Thesaurus, ThesaurusBuilder};
    use cupid_model::{DataType, SchemaBuilder};

    fn thesaurus() -> Thesaurus {
        ThesaurusBuilder::new().concept("price", "money").concept("cost", "money").build().unwrap()
    }

    fn names_for(schema: &Schema, t: &Thesaurus) -> Vec<NormalizedName> {
        let n = Normalizer::default();
        schema.iter().map(|(_, e)| n.normalize(&e.name, t)).collect()
    }

    fn address_schema() -> Schema {
        let mut b = SchemaBuilder::new("S");
        let addr = b.structured(b.root(), "Address", ElementKind::XmlElement);
        b.atomic(addr, "Street", ElementKind::XmlElement, DataType::String);
        b.atomic(addr, "City", ElementKind::XmlElement, DataType::String);
        b.atomic(addr, "UnitPrice", ElementKind::XmlElement, DataType::Money);
        b.build().unwrap()
    }

    #[test]
    fn container_category_groups_children() {
        let s = address_schema();
        let t = thesaurus();
        let names = names_for(&s, &t);
        let cats = categorize(&s, &names);
        let addr = s.find("Address").unwrap();
        let container = cats
            .categories
            .iter()
            .find(|c| c.key == CategoryKey::Container(addr))
            .expect("Address container category");
        // Street, City, UnitPrice are the members.
        assert_eq!(container.members.len(), 3);
        assert_eq!(container.keywords.texts(), ["address"]);
    }

    #[test]
    fn broad_type_categories() {
        let s = address_schema();
        let t = thesaurus();
        let names = names_for(&s, &t);
        let cats = categorize(&s, &names);
        let texts = cats
            .categories
            .iter()
            .find(|c| c.key == CategoryKey::Broad(BroadType::Text))
            .expect("text category");
        assert_eq!(texts.members.len(), 2); // Street, City
        let nums = cats
            .categories
            .iter()
            .find(|c| c.key == CategoryKey::Broad(BroadType::Number))
            .expect("number category");
        assert_eq!(nums.members.len(), 1); // UnitPrice (money)
    }

    #[test]
    fn concept_category_from_tagging() {
        let s = address_schema();
        let t = thesaurus();
        let names = names_for(&s, &t);
        let cats = categorize(&s, &names);
        let money = cats
            .categories
            .iter()
            .find(|c| c.key == CategoryKey::Concept("money".into()))
            .expect("money concept category");
        let price = s.find("UnitPrice").unwrap();
        assert_eq!(money.members, vec![price]);
    }

    #[test]
    fn elements_belong_to_multiple_categories() {
        let s = address_schema();
        let t = thesaurus();
        let names = names_for(&s, &t);
        let cats = categorize(&s, &names);
        let price = s.find("UnitPrice").unwrap();
        // UnitPrice: money concept + number broad + Address container.
        assert_eq!(cats.of(price).len(), 3);
    }

    #[test]
    fn keys_and_fks_not_categorized() {
        let mut b = SchemaBuilder::new("DB");
        let t1 = b.table("A");
        let c1 = b.column(t1, "X", DataType::Int);
        let pk = b.primary_key(t1, &[c1]);
        let t2 = b.table("B");
        let c2 = b.column(t2, "Y", DataType::Int);
        b.foreign_key(t2, "B-A-fk", &[c2], pk);
        let s = b.build().unwrap();
        let t = Thesaurus::empty();
        let names = names_for(&s, &t);
        let cats = categorize(&s, &names);
        for cat in &cats.categories {
            for &m in &cat.members {
                let kind = s.element(m).kind;
                assert!(
                    kind != ElementKind::Key && kind != ElementKind::ForeignKey,
                    "key-like element {m} should not be categorized"
                );
            }
        }
    }
}
