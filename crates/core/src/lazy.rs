//! Lazy schema-tree expansion (§8.4).
//!
//! Type substitution duplicates shared subtrees — one copy per context —
//! and the duplicated copies are compared again and again: *"We can avoid
//! these duplicate comparisons by a lazy schema tree expansion … After
//! comparing an element that is the target t of multiple IsDerivedFrom
//! and containment relationships, multiple copies of the subtree rooted
//! at t are made, including the structural similarities computed so far.
//! … Hence the computed similarity values will remain the same as in the
//! case when the schema is expanded a priori."*
//!
//! Our implementation realizes this as **block copying over the eagerly
//! expanded tree**: maximal duplicated subtrees of the *source* schema are
//! detected by structural signature; the first copy (the representative)
//! is matched normally; when the outer post-order loop completes the
//! representative's root, its leaf-similarity rows are snapshotted; when
//! the loop reaches a later copy, the snapshot is restored into the copy's
//! rows and the whole subtree's comparisons are skipped. The restored
//! values are *bit-identical* to what eager evaluation would compute,
//! because the skipped comparisons would have performed exactly the same
//! floating-point operations on exactly the same inputs (the tests in
//! this module and `tests/lazy_equivalence.rs` assert exact equality).
//!
//! **A reproduction note.** The paper asserts the equivalence for both
//! schemas. It holds unconditionally for the *outer* (source) schema of
//! the TreeMatch double loop: updates to a subtree's leaves come only
//! from comparisons of the subtree's own nodes and of its ancestors, and
//! post-order guarantees all ancestors are visited after every later
//! copy. For the *inner* (target) schema the same argument breaks:
//! ancestors of a representative can be compared *between* the
//! representative and its copy within one inner pass, so the copies'
//! columns diverge across outer iterations. We therefore apply lazy
//! copying to the source side only and fall back to eager evaluation for
//! target-side duplicates (and for DAGs created by join-view
//! reification, where subtree regions are not well defined).

use std::collections::HashMap;

use cupid_model::{NodeId, SchemaTree};

use crate::config::CupidConfig;
use crate::linguistic::LsimTable;
use crate::treematch::{TreeMatchResult, Workspace};

/// Duplicate-subtree plan for one tree.
#[derive(Debug, Default)]
pub(crate) struct DupPlan {
    /// copy root → representative root (first occurrence in post-order).
    pub copy_to_rep: HashMap<NodeId, NodeId>,
    /// Representative roots that have at least one copy (need a
    /// snapshot).
    pub rep_roots: Vec<NodeId>,
    /// Nodes strictly inside a copy's subtree (skipped by the driver).
    pub in_copy: Vec<bool>,
}

impl DupPlan {
    /// Analyze a tree. Returns an empty plan for DAGs (nodes with several
    /// parents), where region-based copying is unsound.
    pub fn build(tree: &SchemaTree) -> DupPlan {
        let n = tree.len();
        let mut plan = DupPlan { in_copy: vec![false; n], ..Default::default() };
        if tree.iter().any(|(_, node)| node.parents.len() > 1) {
            return plan;
        }
        // Structural signatures: (element, child signatures), interned.
        let mut interner: HashMap<(usize, Vec<u32>), u32> = HashMap::new();
        let mut sig = vec![0u32; n];
        for &id in tree.post_order() {
            let node = tree.node(id);
            let key: (usize, Vec<u32>) =
                (node.element.index(), node.children.iter().map(|c| sig[c.index()]).collect());
            let next = interner.len() as u32;
            sig[id.index()] = *interner.entry(key).or_insert(next);
        }
        let mut count: HashMap<u32, u32> = HashMap::new();
        for &id in tree.post_order() {
            *count.entry(sig[id.index()]).or_insert(0) += 1;
        }
        // First occurrence (in post-order) per duplicated signature.
        let mut first: HashMap<u32, NodeId> = HashMap::new();
        for &id in tree.post_order() {
            first.entry(sig[id.index()]).or_insert(id);
        }
        // Maximal duplicated roots: duplicated signature, parent (if any)
        // not duplicated.
        let mut reps: Vec<NodeId> = Vec::new();
        for &id in tree.post_order() {
            let s = sig[id.index()];
            if count[&s] < 2 {
                continue;
            }
            let maximal = match tree.node(id).parents.first() {
                None => true,
                Some(p) => count[&sig[p.index()]] < 2,
            };
            if !maximal {
                continue;
            }
            let rep = first[&s];
            if id == rep {
                reps.push(id);
            } else {
                plan.copy_to_rep.insert(id, rep);
                // Mark strict descendants for skipping.
                let mut stack: Vec<NodeId> = tree.node(id).children.clone();
                while let Some(d) = stack.pop() {
                    plan.in_copy[d.index()] = true;
                    stack.extend_from_slice(&tree.node(d).children);
                }
            }
        }
        // Only keep representatives actually referenced by a copy (a
        // maximal duplicated rep may exist while all other occurrences
        // are nested inside larger copies and therefore never restored).
        let referenced: std::collections::HashSet<NodeId> =
            plan.copy_to_rep.values().copied().collect();
        plan.rep_roots = reps.into_iter().filter(|r| referenced.contains(r)).collect();
        plan
    }

    /// True when the plan has any copy to exploit.
    pub fn has_duplicates(&self) -> bool {
        !self.copy_to_rep.is_empty()
    }
}

/// TreeMatch with lazy (block-copy) evaluation of duplicated source
/// subtrees. Produces results identical to [`crate::treematch::tree_match`].
pub fn tree_match_lazy(
    t1: &SchemaTree,
    t2: &SchemaTree,
    lsim: &LsimTable,
    cfg: &CupidConfig,
) -> TreeMatchResult {
    let plan = DupPlan::build(t1);
    let mut ws = Workspace::new(t1, t2, lsim, cfg);
    if !plan.has_duplicates() {
        ws.run_main_pass();
        return ws.into_result();
    }

    let order1 = t1.post_order();
    let order2 = t2.post_order();
    let nl2 = t2.leaf_count();
    // rep root → per-subtree-leaf full rows of leaf_ssim, in the leaf
    // order of `SchemaTree::leaves` (left-to-right; identical for
    // isomorphic copies of a pure tree).
    let mut snapshots: HashMap<NodeId, Vec<Vec<f64>>> = HashMap::new();

    for &s in order1 {
        if plan.in_copy[s.index()] {
            continue;
        }
        if let Some(rep) = plan.copy_to_rep.get(&s) {
            // Restore: the copy's leaves take the representative's rows as
            // of the representative's completion — exactly the values the
            // skipped comparisons would have produced.
            let snap = &snapshots[rep];
            let copy_leaves = t1.leaves(s);
            debug_assert_eq!(snap.len(), copy_leaves.len());
            for (row, &x2) in snap.iter().zip(copy_leaves) {
                for (y, &v) in row.iter().enumerate() {
                    ws.leaf_ssim.set(x2 as usize, y, v);
                    ws.refresh_strong(x2 as usize, y);
                }
            }
            // Account for skipped node-pair computations.
            let subtree_size = count_subtree(t1, s);
            ws.stats.lazy_copied_pairs += subtree_size * order2.len();
            continue;
        }
        for &t in order2 {
            ws.process_pair(s, t);
        }
        if plan.rep_roots.contains(&s) {
            let rows: Vec<Vec<f64>> = t1
                .leaves(s)
                .iter()
                .map(|&x| (0..nl2).map(|y| ws.leaf_ssim.get(x as usize, y)).collect())
                .collect();
            snapshots.insert(s, rows);
        }
    }
    ws.into_result()
}

fn count_subtree(tree: &SchemaTree, root: NodeId) -> usize {
    let mut n = 1;
    let mut stack: Vec<NodeId> = tree.node(root).children.clone();
    while let Some(d) = stack.pop() {
        n += 1;
        stack.extend_from_slice(&tree.node(d).children);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linguistic::analyze;
    use crate::treematch::tree_match;
    use cupid_lexical::{Thesaurus, ThesaurusBuilder};
    use cupid_model::{expand, DataType, ElementKind, ExpandOptions, Schema, SchemaBuilder};

    /// PurchaseOrder with Address as a shared type under DeliverTo and
    /// InvoiceTo (the §8.2 example).
    fn shared_address(name: &str) -> Schema {
        let mut b = SchemaBuilder::new(name);
        let addr = b.type_def("Address");
        b.atomic(addr, "Street", ElementKind::XmlElement, DataType::String);
        b.atomic(addr, "City", ElementKind::XmlElement, DataType::String);
        b.atomic(addr, "Zip", ElementKind::XmlElement, DataType::String);
        for ctx in ["DeliverTo", "InvoiceTo", "RemitTo"] {
            let e = b.structured(b.root(), ctx, ElementKind::XmlElement);
            b.derive_from(e, addr);
        }
        let items = b.structured(b.root(), "Items", ElementKind::XmlElement);
        b.atomic(items, "Quantity", ElementKind::XmlElement, DataType::Int);
        b.build().unwrap()
    }

    fn flat_target() -> Schema {
        let mut b = SchemaBuilder::new("Order");
        for ctx in ["ShipTo", "BillTo"] {
            let e = b.structured(b.root(), ctx, ElementKind::XmlElement);
            b.atomic(e, "Street", ElementKind::XmlElement, DataType::String);
            b.atomic(e, "City", ElementKind::XmlElement, DataType::String);
            b.atomic(e, "Zip", ElementKind::XmlElement, DataType::String);
        }
        let items = b.structured(b.root(), "Items", ElementKind::XmlElement);
        b.atomic(items, "Qty", ElementKind::XmlElement, DataType::Int);
        b.build().unwrap()
    }

    fn thesaurus() -> Thesaurus {
        ThesaurusBuilder::new()
            .abbreviation("Qty", &["quantity"])
            .synonym("Invoice", "Bill", 1.0)
            .synonym("Ship", "Deliver", 1.0)
            .build()
            .unwrap()
    }

    #[test]
    fn plan_detects_shared_type_copies() {
        let s = shared_address("PO");
        let t = expand(&s, &ExpandOptions::none()).unwrap();
        let plan = DupPlan::build(&t);
        // DeliverTo/InvoiceTo/RemitTo contexts: Street/City/Zip triples
        // are duplicated. The *contexts* differ (different parent
        // elements), so the maximal duplicated units are the individual
        // leaves... unless whole context subtrees share elements. Here
        // the leaves are copies of the same elements: each context's
        // {Street, City, Zip} has identical signatures, and their parents
        // (DeliverTo etc.) differ, so each leaf is a maximal duplicate.
        assert!(plan.has_duplicates());
        assert!(!plan.rep_roots.is_empty());
    }

    #[test]
    fn plan_empty_for_dags() {
        let mut b = SchemaBuilder::new("DB");
        let t1 = b.table("A");
        let c1 = b.column(t1, "X", DataType::Int);
        let pk = b.primary_key(t1, &[c1]);
        let t2 = b.table("B");
        let c2 = b.column(t2, "XRef", DataType::Int);
        b.foreign_key(t2, "B-A-fk", &[c2], pk);
        let s = b.build().unwrap();
        let tree = expand(&s, &ExpandOptions::all()).unwrap();
        let plan = DupPlan::build(&tree);
        assert!(!plan.has_duplicates(), "DAGs must disable lazy copying");
    }

    #[test]
    fn lazy_equals_eager_exactly() {
        let s1 = shared_address("PO");
        let s2 = flat_target();
        let cfg = CupidConfig::default();
        let th = thesaurus();
        let t1 = expand(&s1, &ExpandOptions::none()).unwrap();
        let t2 = expand(&s2, &ExpandOptions::none()).unwrap();
        let la = analyze(&s1, &s2, &th, &cfg);
        let eager = tree_match(&t1, &t2, &la.lsim, &cfg);
        let lazy = tree_match_lazy(&t1, &t2, &la.lsim, &cfg);
        assert_eq!(
            eager.leaf_ssim.max_abs_diff(&lazy.leaf_ssim),
            0.0,
            "leaf ssim must be bit-identical"
        );
        assert_eq!(eager.wsim.max_abs_diff(&lazy.wsim), 0.0, "final wsim must be bit-identical");
        assert!(lazy.stats.lazy_copied_pairs > 0, "lazy must actually skip work");
    }

    #[test]
    fn lazy_equals_eager_with_nested_shared_types() {
        // Contact shares Address; PurchaseOrder shares Contact twice →
        // nested duplication.
        let mut b = SchemaBuilder::new("S1");
        let addr = b.type_def("Address");
        b.atomic(addr, "Street", ElementKind::XmlElement, DataType::String);
        b.atomic(addr, "City", ElementKind::XmlElement, DataType::String);
        let contact = b.type_def("Contact");
        b.atomic(contact, "Phone", ElementKind::XmlElement, DataType::String);
        let chome = b.structured(contact, "Home", ElementKind::XmlElement);
        b.derive_from(chome, addr);
        for ctx in ["Buyer", "Seller", "Broker"] {
            let e = b.structured(b.root(), ctx, ElementKind::XmlElement);
            b.derive_from(e, contact);
        }
        let s1 = b.build().unwrap();

        let mut b = SchemaBuilder::new("S2");
        for ctx in ["Purchaser", "Vendor"] {
            let e = b.structured(b.root(), ctx, ElementKind::XmlElement);
            b.atomic(e, "Phone", ElementKind::XmlElement, DataType::String);
            let h = b.structured(e, "Home", ElementKind::XmlElement);
            b.atomic(h, "Street", ElementKind::XmlElement, DataType::String);
            b.atomic(h, "City", ElementKind::XmlElement, DataType::String);
        }
        let s2 = b.build().unwrap();

        let cfg = CupidConfig::default();
        let th = Thesaurus::with_default_stopwords();
        let t1 = expand(&s1, &ExpandOptions::none()).unwrap();
        let t2 = expand(&s2, &ExpandOptions::none()).unwrap();
        let la = analyze(&s1, &s2, &th, &cfg);
        let eager = tree_match(&t1, &t2, &la.lsim, &cfg);
        let lazy = tree_match_lazy(&t1, &t2, &la.lsim, &cfg);
        assert_eq!(eager.leaf_ssim.max_abs_diff(&lazy.leaf_ssim), 0.0);
        assert_eq!(eager.ssim.max_abs_diff(&lazy.ssim), 0.0);
        assert_eq!(eager.wsim.max_abs_diff(&lazy.wsim), 0.0);
        assert!(lazy.stats.lazy_copied_pairs > 0);
    }

    #[test]
    fn lazy_without_duplicates_is_plain_eager() {
        let s1 = flat_target();
        let s2 = flat_target();
        let cfg = CupidConfig::default();
        let th = thesaurus();
        let t1 = expand(&s1, &ExpandOptions::none()).unwrap();
        let t2 = expand(&s2, &ExpandOptions::none()).unwrap();
        let la = analyze(&s1, &s2, &th, &cfg);
        let eager = tree_match(&t1, &t2, &la.lsim, &cfg);
        let lazy = tree_match_lazy(&t1, &t2, &la.lsim, &cfg);
        assert_eq!(eager.wsim.max_abs_diff(&lazy.wsim), 0.0);
        assert_eq!(lazy.stats.lazy_copied_pairs, 0);
    }
}
