//! Incremental thesaurus learning from validated mappings.
//!
//! The paper's own roadmap (§9.3, conclusion 2): *"A robust solution
//! will need a module to incrementally learn synonyms and abbreviations
//! from mappings that are performed over time."* This module implements
//! that: given mappings a user has validated, it aligns the normalized
//! name tokens of each matched pair and proposes thesaurus entries —
//! synonym candidates for co-occurring unrelated tokens, abbreviation
//! candidates when one token is a prefix of the other.
//!
//! Evidence accumulates across matches (and across match sessions): a
//! pair proposed once is weak, a pair that recurs in several validated
//! correspondences is strong. The caller reviews the proposals and
//! applies them to a [`ThesaurusBuilder`], closing the loop for the next
//! match run.

use std::collections::HashMap;

use cupid_lexical::strsim::AffixConfig;
use cupid_lexical::{Normalizer, Thesaurus, ThesaurusBuilder, TokenType};
use cupid_model::SchemaTree;

use crate::mapping::MappingElement;

/// One learned proposal.
#[derive(Debug, Clone, PartialEq)]
pub enum Proposal {
    /// The two tokens appear to be synonyms (strength grows with
    /// supporting evidence).
    Synonym {
        /// First token (canonical form).
        a: String,
        /// Second token (canonical form).
        b: String,
        /// Number of validated correspondences supporting the pair.
        support: usize,
        /// Suggested thesaurus coefficient.
        coefficient: f64,
    },
    /// `short` looks like an abbreviation of `full` (shared prefix).
    Abbreviation {
        /// The short form.
        short: String,
        /// The full form.
        full: String,
        /// Number of validated correspondences supporting the pair.
        support: usize,
    },
}

impl Proposal {
    /// Evidence count behind the proposal.
    pub fn support(&self) -> usize {
        match self {
            Proposal::Synonym { support, .. } | Proposal::Abbreviation { support, .. } => *support,
        }
    }
}

/// Accumulates evidence from validated mappings across sessions.
#[derive(Debug, Clone, Default)]
pub struct ThesaurusLearner {
    /// (token a, token b) sorted → support count, for synonym candidates.
    synonym_votes: HashMap<(String, String), usize>,
    /// (short, full) → support count, for abbreviation candidates.
    abbrev_votes: HashMap<(String, String), usize>,
}

impl ThesaurusLearner {
    /// New, empty learner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Digest a batch of user-validated mappings. `thesaurus` is the one
    /// used for the match: token pairs it already relates are not
    /// re-proposed.
    ///
    /// Alignment heuristic: for each validated pair, normalize both
    /// element names; exact-equal tokens align and are removed; if one
    /// unmatched token is a prefix of another (≥3 chars) it votes for an
    /// abbreviation; if exactly one content token remains unmatched on
    /// each side, the leftover pair votes for a synonym. Multi-leftover
    /// names are skipped — ambiguous alignments would produce noise.
    pub fn observe(
        &mut self,
        validated: &[&MappingElement],
        source_tree: &SchemaTree,
        target_tree: &SchemaTree,
        thesaurus: &Thesaurus,
    ) {
        let normalizer = Normalizer::default();
        for m in validated {
            let sname = &source_tree.node(m.source).name;
            let tname = &target_tree.node(m.target).name;
            let sn = normalizer.normalize(sname, thesaurus);
            let tn = normalizer.normalize(tname, thesaurus);
            let mut s_tokens: Vec<String> = sn
                .tokens
                .iter()
                .filter(|t| t.ttype == TokenType::Content)
                .map(|t| t.text.clone())
                .collect();
            let mut t_tokens: Vec<String> = tn
                .tokens
                .iter()
                .filter(|t| t.ttype == TokenType::Content)
                .map(|t| t.text.clone())
                .collect();
            // remove tokens the thesaurus already considers related
            s_tokens.retain(|s| {
                if let Some(pos) =
                    t_tokens.iter().position(|t| thesaurus.token_sim(s, t).unwrap_or(0.0) >= 0.8)
                {
                    t_tokens.remove(pos);
                    false
                } else {
                    true
                }
            });
            // prefix pairs → abbreviation votes
            let mut s_left: Vec<String> = Vec::new();
            for s in s_tokens {
                if let Some(pos) = t_tokens.iter().position(|t| is_abbreviation(&s, t)) {
                    let t = t_tokens.remove(pos);
                    let (short, full) = if s.len() < t.len() { (s, t) } else { (t, s) };
                    *self.abbrev_votes.entry((short, full)).or_insert(0) += 1;
                } else {
                    s_left.push(s);
                }
            }
            // a single leftover pair → synonym vote
            if s_left.len() == 1 && t_tokens.len() == 1 {
                let (a, b) = (s_left.remove(0), t_tokens.remove(0));
                let key = if a <= b { (a, b) } else { (b, a) };
                *self.synonym_votes.entry(key).or_insert(0) += 1;
            }
        }
    }

    /// Proposals with at least `min_support` votes, strongest first.
    /// Synonym coefficients grow with support, saturating at 0.95
    /// (learned entries stay below hand-curated ones).
    pub fn proposals(&self, min_support: usize) -> Vec<Proposal> {
        let mut out: Vec<Proposal> = Vec::new();
        for ((a, b), &support) in &self.synonym_votes {
            if support >= min_support {
                let coefficient = (0.6 + 0.1 * (support as f64 - 1.0)).min(0.95);
                out.push(Proposal::Synonym { a: a.clone(), b: b.clone(), support, coefficient });
            }
        }
        for ((short, full), &support) in &self.abbrev_votes {
            if support >= min_support {
                out.push(Proposal::Abbreviation {
                    short: short.clone(),
                    full: full.clone(),
                    support,
                });
            }
        }
        out.sort_by(|x, y| {
            y.support().cmp(&x.support()).then_with(|| format!("{x:?}").cmp(&format!("{y:?}")))
        });
        out
    }

    /// Apply proposals to a thesaurus builder, returning the augmented
    /// builder.
    pub fn apply(proposals: &[Proposal], mut builder: ThesaurusBuilder) -> ThesaurusBuilder {
        for p in proposals {
            builder = match p {
                Proposal::Synonym { a, b, coefficient, .. } => builder.synonym(a, b, *coefficient),
                Proposal::Abbreviation { short, full, .. } => {
                    builder.abbreviation(short, &[full.as_str()])
                }
            };
        }
        builder
    }

    /// Convenience: observe every mapping of an outcome that the user
    /// validated against a predicate (e.g. membership in a gold set).
    pub fn observe_validated<F>(
        &mut self,
        outcome: &crate::matcher::MatchOutcome,
        thesaurus: &Thesaurus,
        mut is_valid: F,
    ) where
        F: FnMut(&MappingElement) -> bool,
    {
        let validated: Vec<&MappingElement> =
            outcome.leaf_mappings.iter().filter(|m| is_valid(m)).collect();
        self.observe(&validated, &outcome.source_tree, &outcome.target_tree, thesaurus);
    }
}

/// `short` is an abbreviation candidate for `full` when the shorter
/// token's characters appear in order within the longer one, starting at
/// its first character (Qty ⊂ Quantity, Amt ⊂ Amount, Num ⊂ Number).
/// Requires ≥2 chars on the short side and a real length gap; the user
/// reviews proposals, so mild over-generation is acceptable.
fn is_abbreviation(a: &str, b: &str) -> bool {
    if a == b {
        return false;
    }
    let (short, full) = if a.len() < b.len() { (a, b) } else { (b, a) };
    if short.len() < 2 || full.len() <= short.len() {
        return false;
    }
    let mut fc = full.chars();
    let mut first = true;
    for c in short.chars() {
        let found = if first {
            first = false;
            fc.next() == Some(c)
        } else {
            fc.by_ref().any(|f| f == c)
        };
        if !found {
            return false;
        }
    }
    true
}

/// The affix config used to rank prefix evidence (re-exported for
/// callers that want to pre-filter).
pub fn default_affix() -> AffixConfig {
    AffixConfig::default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::Cupid;
    use cupid_lexical::Thesaurus;
    use cupid_model::{DataType, ElementKind, Schema, SchemaBuilder};

    fn schema(name: &str, class: &str, attrs: &[&str]) -> Schema {
        let mut b = SchemaBuilder::new(name);
        let c = b.structured(b.root(), class, ElementKind::Class);
        for a in attrs {
            b.atomic(c, *a, ElementKind::Attribute, DataType::String);
        }
        b.build().unwrap()
    }

    /// The §9.3(2) loop: match without domain knowledge, validate, learn,
    /// re-match with the learned thesaurus, and gain recall.
    #[test]
    fn learned_synonyms_improve_the_next_run() {
        let s1 = schema("S1", "Customer", &["CustomerName", "CustomerStreet", "CustomerPhone"]);
        let s2 = schema("S2", "Client", &["ClientName", "ClientStreet", "ClientPhone"]);
        let base = Thesaurus::with_default_stopwords();
        let cupid = Cupid::new(base.clone());
        let first = cupid.match_schemas(&s1, &s2).unwrap();

        // The user validates whatever the first run found (names share
        // the Name/Street/Phone tokens, so the pairs are found; the
        // customer/client tokens stay unrelated).
        let mut learner = ThesaurusLearner::new();
        learner.observe_validated(&first, &base, |_| true);
        let proposals = learner.proposals(2);
        assert!(
            proposals.iter().any(|p| matches!(
                p,
                Proposal::Synonym { a, b, .. } if a == "client" && b == "customer"
            )),
            "expected a customer/client synonym proposal: {proposals:?}"
        );

        // Apply and re-run: lsim(Customer, Client) is now non-zero, so
        // the class-level mapping appears.
        let learned = ThesaurusLearner::apply(&proposals, ThesaurusBuilder::new()).build().unwrap();
        let second = Cupid::new(learned).match_schemas(&s1, &s2).unwrap();
        let w_first = first.wsim_of_paths("S1.Customer", "S2.Client");
        let w_second = second.wsim_of_paths("S1.Customer", "S2.Client");
        assert!(
            w_second > w_first,
            "learned thesaurus should lift the class pair: {w_first} -> {w_second}"
        );
    }

    #[test]
    fn abbreviations_are_detected_from_prefix_pairs() {
        let s1 = schema("S1", "Order", &["Qty", "Amt"]);
        let s2 = schema("S2", "Order", &["Quantity", "Amount"]);
        // Force the pairing through a seed so the learner sees validated
        // correspondences even without linguistic overlap.
        let base = Thesaurus::with_default_stopwords();
        let qty = s1.find("Qty").unwrap();
        let quantity = s2.find("Quantity").unwrap();
        let amt = s1.find("Amt").unwrap();
        let amount = s2.find("Amount").unwrap();
        let cupid = Cupid::new(base.clone());
        let out = cupid.match_schemas_seeded(&s1, &s2, &[(qty, quantity), (amt, amount)]).unwrap();
        let mut learner = ThesaurusLearner::new();
        learner.observe_validated(&out, &base, |m| {
            (m.source_path.ends_with("Qty") && m.target_path.ends_with("Quantity"))
                || (m.source_path.ends_with("Amt") && m.target_path.ends_with("Amount"))
        });
        let proposals = learner.proposals(1);
        assert!(
            proposals.iter().any(|p| matches!(
                p,
                Proposal::Abbreviation { short, full, .. } if short == "qty" && full == "quantity"
            )),
            "expected qty/quantity abbreviation: {proposals:?}"
        );
    }

    #[test]
    fn already_related_tokens_are_not_reproposed() {
        let s1 = schema("S1", "Order", &["BillCity"]);
        let s2 = schema("S2", "Order", &["InvoiceCity"]);
        let thesaurus = ThesaurusBuilder::new().synonym("bill", "invoice", 1.0).build().unwrap();
        let out = Cupid::new(thesaurus.clone()).match_schemas(&s1, &s2).unwrap();
        let mut learner = ThesaurusLearner::new();
        learner.observe_validated(&out, &thesaurus, |_| true);
        assert!(
            learner.proposals(1).is_empty(),
            "bill/invoice is already in the thesaurus: {:?}",
            learner.proposals(1)
        );
    }

    #[test]
    fn support_accumulates_and_gates() {
        let s1 = schema("S1", "Customer", &["CustomerName"]);
        let s2 = schema("S2", "Client", &["ClientName"]);
        let base = Thesaurus::with_default_stopwords();
        let out = Cupid::new(base.clone()).match_schemas(&s1, &s2).unwrap();
        let mut learner = ThesaurusLearner::new();
        learner.observe_validated(&out, &base, |_| true);
        // one leaf pair → support 1; min_support 2 filters it out
        assert!(learner.proposals(2).is_empty());
        assert!(!learner.proposals(1).is_empty());
        // observing the same evidence again accumulates
        learner.observe_validated(&out, &base, |_| true);
        assert!(!learner.proposals(2).is_empty());
    }

    #[test]
    fn ambiguous_alignments_are_skipped() {
        // two leftovers per side → no synonym vote
        let s1 = schema("S1", "T", &["AlphaBravo"]);
        let s2 = schema("S2", "T", &["GammaDelta"]);
        let base = Thesaurus::with_default_stopwords();
        let a = s1.find("AlphaBravo").unwrap();
        let g = s2.find("GammaDelta").unwrap();
        let out = Cupid::new(base.clone()).match_schemas_seeded(&s1, &s2, &[(a, g)]).unwrap();
        let mut learner = ThesaurusLearner::new();
        learner.observe_validated(&out, &base, |m| m.source_path.ends_with("AlphaBravo"));
        assert!(
            learner.synonym_votes.is_empty(),
            "ambiguous two-token leftovers must not vote: {:?}",
            learner.synonym_votes
        );
    }

    #[test]
    fn is_abbreviation_rules() {
        // subsequence contractions
        assert!(is_abbreviation("qty", "quantity"));
        assert!(is_abbreviation("amt", "amount"));
        assert!(is_abbreviation("num", "number"));
        // plain prefixes
        assert!(is_abbreviation("quan", "quantity"));
        assert!(is_abbreviation("quantity", "quan")); // order-insensitive

        // rejections
        assert!(!is_abbreviation("qty", "qty"));
        assert!(!is_abbreviation("x", "xylophone")); // too short
        assert!(!is_abbreviation("abc", "xyz"));
        assert!(!is_abbreviation("tyq", "quantity")); // wrong first char
    }
}
