//! The public entry point: [`Cupid`].
//!
//! Wires the three phases together (§4): linguistic matching → structure
//! matching → mapping generation, over schema trees expanded per §8.
//! The linguistic phase runs the interned engine
//! ([`crate::linguistic::analyze`]): token-pair similarities are
//! memoized across the whole match, which the equivalence suite proves
//! output-identical to the naive §5 transliteration
//! ([`crate::linguistic::analyze_naive`]).

use cupid_lexical::Thesaurus;
use cupid_model::{expand, ElementId, ModelError, Schema, SchemaTree};

use crate::config::CupidConfig;
use crate::lazy;
use crate::linguistic::{analyze, LinguisticAnalysis};
use crate::mapping::{leaf_mappings, nonleaf_mappings, Cardinality, MappingElement};
use crate::session::{MatchSession, MatchSummary, SessionStats};
use crate::treematch::{tree_match, TreeMatchResult};

/// The complete match outcome: mappings plus every intermediate artifact
/// (trees, linguistic analysis, similarity matrices) for inspection,
/// evaluation and user validation (§2: *"essential to have user
/// validation of the result"*).
#[derive(Debug, Clone)]
pub struct MatchOutcome {
    /// Expanded source schema tree.
    pub source_tree: SchemaTree,
    /// Expanded target schema tree.
    pub target_tree: SchemaTree,
    /// Linguistic phase output (`lsim` table, categories, diagnostics).
    pub linguistic: LinguisticAnalysis,
    /// Structural phase output (final similarity matrices).
    pub structural: TreeMatchResult,
    /// Leaf-level mapping (the paper's naïve 1:n generator).
    pub leaf_mappings: Vec<MappingElement>,
    /// Non-leaf mapping from the recomputed similarities.
    pub nonleaf_mappings: Vec<MappingElement>,
}

impl MatchOutcome {
    /// True if some leaf mapping relates the two context paths.
    pub fn has_leaf_mapping(&self, source_path: &str, target_path: &str) -> bool {
        self.leaf_mappings
            .iter()
            .any(|m| m.source_path == source_path && m.target_path == target_path)
    }

    /// True if some non-leaf mapping relates the two context paths.
    pub fn has_nonleaf_mapping(&self, source_path: &str, target_path: &str) -> bool {
        self.nonleaf_mappings
            .iter()
            .any(|m| m.source_path == source_path && m.target_path == target_path)
    }

    /// The mapping element (leaf or non-leaf) for a target path, if any.
    pub fn mapping_for_target(&self, target_path: &str) -> Option<&MappingElement> {
        self.leaf_mappings
            .iter()
            .chain(&self.nonleaf_mappings)
            .find(|m| m.target_path == target_path)
    }

    /// Weighted similarity of two context paths (0 if unknown paths).
    pub fn wsim_of_paths(&self, source_path: &str, target_path: &str) -> f64 {
        match (self.source_tree.find_path(source_path), self.target_tree.find_path(target_path)) {
            (Some(s), Some(t)) => self.structural.wsim.get(s.index(), t.index()),
            _ => 0.0,
        }
    }

    /// Regenerate the leaf mapping under a different cardinality policy.
    pub fn leaf_mappings_with(
        &self,
        cfg: &CupidConfig,
        cardinality: Cardinality,
    ) -> Vec<MappingElement> {
        leaf_mappings(
            &self.source_tree,
            &self.target_tree,
            &self.structural,
            &self.linguistic.lsim,
            cfg,
            cardinality,
        )
    }
}

/// The result of [`Cupid::match_corpus`]: one [`MatchSummary`] per
/// unordered schema pair (lexicographic order) plus the session's
/// aggregate cache statistics.
#[derive(Debug, Clone)]
pub struct CorpusMatch {
    /// Per-pair summaries, `(i, j)` with `i < j` in corpus order.
    pub summaries: Vec<MatchSummary>,
    /// Session counters (vocabulary size, memoized token pairs, …).
    pub stats: SessionStats,
}

impl CorpusMatch {
    /// The summary for a pair of corpus indices, if it was matched.
    pub fn pair(&self, i: usize, j: usize) -> Option<&MatchSummary> {
        let (i, j) = if i <= j { (i, j) } else { (j, i) };
        self.summaries.iter().find(|s| s.source.index() == i && s.target.index() == j)
    }
}

/// The Cupid matcher: configuration + thesaurus.
#[derive(Debug, Clone)]
pub struct Cupid {
    config: CupidConfig,
    thesaurus: Thesaurus,
    use_lazy_expansion: bool,
}

impl Cupid {
    /// A matcher with the paper's default parameters (Table 1).
    pub fn new(thesaurus: Thesaurus) -> Self {
        Cupid { config: CupidConfig::default(), thesaurus, use_lazy_expansion: false }
    }

    /// A matcher with a custom configuration.
    pub fn with_config(config: CupidConfig, thesaurus: Thesaurus) -> Self {
        Cupid { config, thesaurus, use_lazy_expansion: false }
    }

    /// Enable the lazy-expansion optimization (§8.4): duplicate subtree
    /// contexts created by type substitution are block-copied instead of
    /// recomputed. Results are identical; see [`crate::lazy`].
    pub fn with_lazy_expansion(mut self, enabled: bool) -> Self {
        self.use_lazy_expansion = enabled;
        self
    }

    /// Access the configuration.
    pub fn config(&self) -> &CupidConfig {
        &self.config
    }

    /// Access the thesaurus.
    pub fn thesaurus(&self) -> &Thesaurus {
        &self.thesaurus
    }

    /// Match two schemas end to end.
    pub fn match_schemas(&self, s1: &Schema, s2: &Schema) -> Result<MatchOutcome, ModelError> {
        self.match_schemas_seeded(s1, s2, &[])
    }

    /// Open a batch-matching session over this matcher's configuration
    /// and thesaurus (DESIGN.md §7): schemas are prepared once, one
    /// token-similarity memo persists across all pairs, and pair
    /// worklists shard across OS threads — with results bit-identical
    /// to [`Cupid::match_schemas`] on the same pairs.
    pub fn session(&self) -> MatchSession<'_> {
        MatchSession::new(&self.config, &self.thesaurus)
    }

    /// Match every unordered pair of a schema corpus in one session —
    /// the Valentine-style all-pairs discovery workload. Convenience
    /// wrapper over [`Cupid::session`]; use the session directly for
    /// incremental corpora, explicit worklists or thread-count control.
    pub fn match_corpus(&self, schemas: &[Schema]) -> Result<CorpusMatch, ModelError> {
        let mut session = self.session();
        session.add_corpus(schemas)?;
        let summaries = session.match_all_pairs();
        Ok(CorpusMatch { summaries, stats: session.stats() })
    }

    /// Match two schemas with a user-supplied initial mapping (§8.4):
    /// the linguistic similarity of seeded element pairs is raised to the
    /// configured maximum before structure matching, so the hint
    /// propagates to ancestors. Re-running with a corrected seed is the
    /// paper's user-interaction loop.
    pub fn match_schemas_seeded(
        &self,
        s1: &Schema,
        s2: &Schema,
        initial_mapping: &[(ElementId, ElementId)],
    ) -> Result<MatchOutcome, ModelError> {
        let t1 = expand(s1, &self.config.expand)?;
        let t2 = expand(s2, &self.config.expand)?;
        Ok(self.match_trees(s1, t1, s2, t2, initial_mapping))
    }

    /// Match pre-expanded trees (useful for ablations that tweak
    /// expansion).
    pub fn match_trees(
        &self,
        s1: &Schema,
        t1: SchemaTree,
        s2: &Schema,
        t2: SchemaTree,
        initial_mapping: &[(ElementId, ElementId)],
    ) -> MatchOutcome {
        let mut linguistic = analyze(s1, s2, &self.thesaurus, &self.config);
        for &(e1, e2) in initial_mapping {
            linguistic.lsim.set(e1, e2, self.config.initial_mapping_lsim);
        }
        let structural = if self.use_lazy_expansion {
            lazy::tree_match_lazy(&t1, &t2, &linguistic.lsim, &self.config)
        } else {
            tree_match(&t1, &t2, &linguistic.lsim, &self.config)
        };
        // Leaf mappings use the paper's naïve 1:n generator (§7) — this is
        // what produces the two false positives the paper reports for the
        // CIDX–Excel example. Non-leaf (XML-element level) mappings are
        // reported 1:1: with saturated leaf similarities an inner element
        // (Item) otherwise out-bids its parent (POLines) for the target
        // (Items), and Table 3 shows Cupid reporting POLines→Items *and*
        // Item→Item simultaneously, which is a 1:1 interpretation.
        let leaf = leaf_mappings(
            &t1,
            &t2,
            &structural,
            &linguistic.lsim,
            &self.config,
            Cardinality::OneToN,
        );
        let nonleaf = nonleaf_mappings(
            &t1,
            &t2,
            &structural,
            &linguistic.lsim,
            &self.config,
            Cardinality::OneToOne,
        );
        MatchOutcome {
            source_tree: t1,
            target_tree: t2,
            linguistic,
            structural,
            leaf_mappings: leaf,
            nonleaf_mappings: nonleaf,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cupid_lexical::ThesaurusBuilder;
    use cupid_model::{DataType, ElementKind, SchemaBuilder};

    fn paper_thesaurus() -> Thesaurus {
        ThesaurusBuilder::new()
            .abbreviation("UOM", &["unit", "of", "measure"])
            .abbreviation("PO", &["purchase", "order"])
            .abbreviation("Qty", &["quantity"])
            .abbreviation("POrder", &["purchase", "order"])
            .synonym("Invoice", "Bill", 1.0)
            .synonym("Ship", "Deliver", 1.0)
            .build()
            .unwrap()
    }

    /// Figure 1's two schemas.
    fn fig1() -> (Schema, Schema) {
        let mut b = SchemaBuilder::new("PO");
        let lines = b.structured(b.root(), "Lines", ElementKind::XmlElement);
        let item = b.structured(lines, "Item", ElementKind::XmlElement);
        b.atomic(item, "Line", ElementKind::XmlElement, DataType::Int);
        b.atomic(item, "Qty", ElementKind::XmlElement, DataType::Int);
        b.atomic(item, "Uom", ElementKind::XmlElement, DataType::String);
        let po = b.build().unwrap();

        let mut b = SchemaBuilder::new("POrder");
        let items = b.structured(b.root(), "Items", ElementKind::XmlElement);
        let item = b.structured(items, "Item", ElementKind::XmlElement);
        b.atomic(item, "ItemNumber", ElementKind::XmlElement, DataType::Int);
        b.atomic(item, "Quantity", ElementKind::XmlElement, DataType::Int);
        b.atomic(item, "UnitOfMeasure", ElementKind::XmlElement, DataType::String);
        let porder = b.build().unwrap();
        (po, porder)
    }

    #[test]
    fn figure_1_mapping() {
        let (po, porder) = fig1();
        // Table 1: cinc is "typically a function of maximum schema depth".
        // Figure 1's schemas are only 3 levels deep, so each leaf pair can
        // receive at most ~3 ancestor reinforcements; 1.35 lets a
        // type-compatible leaf in a matched context reach acceptance
        // without saturating wrong-context pairs.
        let mut cfg = CupidConfig::default();
        cfg.c_inc = 1.35;
        let cupid = Cupid::with_config(cfg, paper_thesaurus());
        let out = cupid.match_schemas(&po, &porder).unwrap();
        // Qty -> Quantity and Uom -> UnitOfMeasure via the thesaurus.
        assert!(out.has_leaf_mapping("PO.Lines.Item.Qty", "POrder.Items.Item.Quantity"));
        assert!(out.has_leaf_mapping("PO.Lines.Item.Uom", "POrder.Items.Item.UnitOfMeasure"));
        // The paper's marquee structural match: Line -> ItemNumber with no
        // thesaurus support, carried by data type + context.
        assert!(
            out.has_leaf_mapping("PO.Lines.Item.Line", "POrder.Items.Item.ItemNumber"),
            "leaf mappings: {:#?}",
            out.leaf_mappings
        );
        // Non-leaf: Lines -> Items, Item -> Item.
        assert!(out.has_nonleaf_mapping("PO.Lines.Item", "POrder.Items.Item"));
        assert!(out.has_nonleaf_mapping("PO.Lines", "POrder.Items"));
    }

    #[test]
    fn initial_mapping_seeds_propagate() {
        // Two schemas with opaque names; a seed on the leaves lifts the
        // ancestors' similarity.
        let mut b = SchemaBuilder::new("S1");
        let g = b.structured(b.root(), "GrpQ", ElementKind::XmlElement);
        let x = b.atomic(g, "FieldX", ElementKind::XmlElement, DataType::Int);
        let s1 = b.build().unwrap();
        let mut b = SchemaBuilder::new("S2");
        let g = b.structured(b.root(), "SectZ", ElementKind::XmlElement);
        let y = b.atomic(g, "DatumY", ElementKind::XmlElement, DataType::Int);
        let s2 = b.build().unwrap();

        let cupid = Cupid::new(Thesaurus::with_default_stopwords());
        let without = cupid.match_schemas(&s1, &s2).unwrap();
        let with = cupid.match_schemas_seeded(&s1, &s2, &[(x, y)]).unwrap();
        let w_before = without.wsim_of_paths("S1.GrpQ.FieldX", "S2.SectZ.DatumY");
        let w_after = with.wsim_of_paths("S1.GrpQ.FieldX", "S2.SectZ.DatumY");
        assert!(w_after > w_before, "seed must raise wsim: {w_before} -> {w_after}");
        assert!(with.has_leaf_mapping("S1.GrpQ.FieldX", "S2.SectZ.DatumY"));
        let g_before = without.wsim_of_paths("S1.GrpQ", "S2.SectZ");
        let g_after = with.wsim_of_paths("S1.GrpQ", "S2.SectZ");
        assert!(g_after > g_before, "seed must lift ancestors: {g_before} -> {g_after}");
    }

    #[test]
    fn match_corpus_agrees_with_single_pairs() {
        let (po, porder) = fig1();
        let cupid = Cupid::new(paper_thesaurus());
        let corpus = [po.clone(), porder.clone(), po.clone()];
        let out = cupid.match_corpus(&corpus).unwrap();
        assert_eq!(out.summaries.len(), 3);
        assert_eq!(out.stats.pairs_matched, 3);
        assert!(out.stats.vocab_size > 0);
        let single = cupid.match_schemas(&po, &porder).unwrap();
        let pair = out.pair(0, 1).unwrap();
        assert_eq!(pair.leaf_mappings, single.leaf_mappings);
        assert_eq!(pair.nonleaf_mappings, single.nonleaf_mappings);
        assert!(out.pair(1, 0).is_some(), "pair lookup is unordered");
        assert!(out.pair(0, 3).is_none());
    }

    #[test]
    fn outcome_helpers() {
        let (po, porder) = fig1();
        let out = Cupid::new(paper_thesaurus()).match_schemas(&po, &porder).unwrap();
        assert!(out.mapping_for_target("POrder.Items.Item.Quantity").is_some());
        assert!(out.mapping_for_target("POrder.Nowhere").is_none());
        let one_to_one = out.leaf_mappings_with(&CupidConfig::default(), Cardinality::OneToOne);
        assert!(!one_to_one.is_empty());
        // 1:1 never repeats a source
        let mut sources: Vec<&str> = one_to_one.iter().map(|m| m.source_path.as_str()).collect();
        sources.sort();
        let before = sources.len();
        sources.dedup();
        assert_eq!(before, sources.len());
    }
}
