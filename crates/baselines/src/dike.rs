//! A DIKE-style matcher (§9, ref \[12\]).
//!
//! DIKE integrates ER schemas by exploiting *"the principle that the
//! similarity of schema elements depends on the similarity of elements in
//! their vicinity. The relevance of elements is inversely proportional to
//! their distance from the elements being compared"*. Pairwise
//! similarities are seeded from the LSPD (Lexical Synonymy Property
//! Dictionary), data domains and keyness, then iteratively re-evaluated
//! from distance-decayed neighborhood evidence; entities and attributes
//! whose final similarity clears a threshold are merged into the
//! abstracted schema.
//!
//! Faithful behavioural properties (verified against §9.1/§9.2):
//! * identical names merge without any LSPD input;
//! * renamed attributes need LSPD entries (canonical test 3, footnote a);
//! * entities with renamed class names still merge through their
//!   vicinity (test 4) and across nesting differences (test 5);
//! * shared types are single graph nodes, so context-dependent mappings
//!   are impossible (test 6 = No) and one greedy merge swallows
//!   `Address`, leaving `POBillTo`/`POShipTo` without partners in the
//!   Figure-7 run — exactly the confusion the paper reports.

use std::collections::HashMap;

use cupid_lexical::stem::stem;
use cupid_model::{ElementId, ElementKind, Schema};

/// The Lexical Synonymy Property Dictionary: name-pair similarity
/// coefficients supplied by the user. The paper's CIDX–Excel run used
/// entries *"similar to the linguistic similarity coefficients computed
/// by Cupid"* — see [`Lspd::from_pairs`] and the eval crate's adapter.
#[derive(Debug, Clone, Default)]
pub struct Lspd {
    entries: HashMap<(String, String), f64>,
}

fn canon_name(name: &str) -> String {
    // lower-case + light stemming per token boundary is overkill here;
    // DIKE matched whole names, so canonicalize the whole identifier.
    stem(&name.to_lowercase())
}

fn key(a: &str, b: &str) -> (String, String) {
    let (a, b) = (canon_name(a), canon_name(b));
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl Lspd {
    /// Build from `(name, name, coefficient)` triples.
    pub fn from_pairs<I, S1, S2>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (S1, S2, f64)>,
        S1: AsRef<str>,
        S2: AsRef<str>,
    {
        let mut l = Lspd::default();
        for (a, b, c) in pairs {
            l.insert(a.as_ref(), b.as_ref(), c);
        }
        l
    }

    /// Insert an entry (symmetric), clamped to `[0,1]`.
    pub fn insert(&mut self, a: &str, b: &str, coefficient: f64) {
        self.entries.insert(key(a, b), coefficient.clamp(0.0, 1.0));
    }

    /// Lexical similarity of two names: exact canonical equality is 1.0,
    /// otherwise the dictionary entry, otherwise 0.
    pub fn lookup(&self, a: &str, b: &str) -> f64 {
        if canon_name(a) == canon_name(b) {
            return 1.0;
        }
        self.entries.get(&key(a, b)).copied().unwrap_or(0.0)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the dictionary has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// DIKE control parameters.
#[derive(Debug, Clone)]
pub struct DikeConfig {
    /// Weight of the seed (LSPD/domain) similarity for *attribute* pairs;
    /// the complement comes from the vicinity. Attributes are
    /// name-dominated in DIKE.
    pub attr_seed_weight: f64,
    /// Seed weight for *entity* pairs; entities are vicinity-dominated
    /// (that is how test 4 merges `Customer` with `Person`).
    pub entity_seed_weight: f64,
    /// Per-distance decay of vicinity influence (*"nearby elements
    /// influence a match more than ones farther away"*).
    pub decay: f64,
    /// Maximum vicinity distance considered.
    pub max_distance: usize,
    /// Fixpoint iterations.
    pub iterations: usize,
    /// Similarity needed to merge a pair into the abstracted schema.
    pub merge_threshold: f64,
    /// Bonus when both attributes are key members ("keyness").
    pub keyness_bonus: f64,
    /// Weight of data-domain compatibility in the attribute seed.
    pub domain_weight: f64,
}

impl Default for DikeConfig {
    fn default() -> Self {
        DikeConfig {
            attr_seed_weight: 0.7,
            entity_seed_weight: 0.2,
            decay: 0.5,
            max_distance: 2,
            iterations: 4,
            merge_threshold: 0.5,
            keyness_bonus: 0.05,
            domain_weight: 0.15,
        }
    }
}

/// Node classification in DIKE's ER view of a schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeKind {
    /// Has containment children: models an ER entity.
    Entity,
    /// Non-leaf without own children (e.g. an element that only
    /// references shared types): modeled as an ER *relationship* in the
    /// paper's first remodeling; not merged directly.
    Relationship,
    /// A leaf: an ER attribute.
    Attribute,
    /// Keys/foreign keys/views: invisible to DIKE.
    Skip,
}

/// One matched pair in the abstracted schema.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedPair {
    /// Containment path in schema 1.
    pub source_path: String,
    /// Containment path in schema 2.
    pub target_path: String,
    /// Final similarity.
    pub similarity: f64,
}

/// DIKE's output: the merge decisions of the abstracted schema.
#[derive(Debug, Clone, Default)]
pub struct DikeResult {
    /// Merged entity pairs (greedy 1:1, descending similarity).
    pub merged_entities: Vec<MergedPair>,
    /// Merged attribute pairs (greedy 1:1).
    pub merged_attributes: Vec<MergedPair>,
}

impl DikeResult {
    /// True if the entity pair was merged.
    pub fn has_entity(&self, source_path: &str, target_path: &str) -> bool {
        self.merged_entities
            .iter()
            .any(|m| m.source_path == source_path && m.target_path == target_path)
    }

    /// True if the attribute pair was merged.
    pub fn has_attribute(&self, source_path: &str, target_path: &str) -> bool {
        self.merged_attributes
            .iter()
            .any(|m| m.source_path == source_path && m.target_path == target_path)
    }
}

/// The DIKE matcher.
#[derive(Debug, Clone, Default)]
pub struct Dike {
    config: DikeConfig,
}

struct Side {
    ids: Vec<ElementId>,
    kinds: Vec<NodeKind>,
    /// neighbors at distance exactly d (1-based: index 0 = distance 1).
    neighborhoods: Vec<Vec<Vec<usize>>>,
    paths: Vec<String>,
}

fn classify(schema: &Schema, id: ElementId) -> NodeKind {
    let e = schema.element(id);
    match e.kind {
        ElementKind::Key | ElementKind::ForeignKey | ElementKind::View => NodeKind::Skip,
        _ => {
            // The paper's first ER remodeling (§9.2): "we first chose to
            // model the root elements and all XML-elements that had any
            // attributes, as entities (and so DeliverTo and InvoiceTo are
            // relationships)". An element is an entity iff it is a root
            // or directly carries atomic attributes; purely structural
            // elements become relationships.
            let has_leaf_child = schema
                .children(id)
                .iter()
                .any(|&ch| schema.children(ch).is_empty() && schema.derived_from(ch).is_empty());
            if schema.parent(id).is_none() || has_leaf_child {
                NodeKind::Entity
            } else if !schema.children(id).is_empty()
                || e.data_type == cupid_model::DataType::Complex
                || !schema.derived_from(id).is_empty()
            {
                NodeKind::Relationship
            } else {
                NodeKind::Attribute
            }
        }
    }
}

fn build_side(schema: &Schema, max_distance: usize) -> Side {
    let n = schema.len();
    let ids: Vec<ElementId> = schema.iter().map(|(id, _)| id).collect();
    let kinds: Vec<NodeKind> = ids.iter().map(|&id| classify(schema, id)).collect();
    // adjacency over containment + derivation + aggregation + references
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (id, _) in schema.iter() {
        let i = id.index();
        if let Some(p) = schema.parent(id) {
            adj[i].push(p.index());
            adj[p.index()].push(i);
        }
        for &t in schema.derived_from(id) {
            adj[i].push(t.index());
            adj[t.index()].push(i);
        }
        for &t in schema.aggregates(id) {
            adj[i].push(t.index());
            adj[t.index()].push(i);
        }
        for &t in schema.references(id) {
            adj[i].push(t.index());
            adj[t.index()].push(i);
        }
    }
    // BFS rings up to max_distance per node
    let mut neighborhoods = Vec::with_capacity(n);
    for start in 0..n {
        let mut rings: Vec<Vec<usize>> = vec![Vec::new(); max_distance];
        let mut dist = vec![usize::MAX; n];
        dist[start] = 0;
        let mut frontier = vec![start];
        for d in 1..=max_distance {
            let mut next = Vec::new();
            for &u in &frontier {
                for &v in &adj[u] {
                    if dist[v] == usize::MAX {
                        dist[v] = d;
                        next.push(v);
                        if kinds[v] != NodeKind::Skip {
                            rings[d - 1].push(v);
                        }
                    }
                }
            }
            frontier = next;
        }
        neighborhoods.push(rings);
    }
    let paths = ids.iter().map(|&id| schema.containment_path(id)).collect();
    Side { ids, kinds, neighborhoods, paths }
}

impl Dike {
    /// Matcher with default parameters.
    pub fn new() -> Self {
        Dike::default()
    }

    /// Matcher with custom parameters.
    pub fn with_config(config: DikeConfig) -> Self {
        Dike { config }
    }

    /// Run DIKE over two schemas with the given LSPD.
    pub fn run(&self, s1: &Schema, s2: &Schema, lspd: &Lspd) -> DikeResult {
        let cfg = &self.config;
        let a = build_side(s1, cfg.max_distance);
        let b = build_side(s2, cfg.max_distance);
        let (n1, n2) = (a.ids.len(), b.ids.len());

        // seed similarities
        let mut seed = vec![0.0f64; n1 * n2];
        for i in 0..n1 {
            if a.kinds[i] == NodeKind::Skip || a.kinds[i] == NodeKind::Relationship {
                continue;
            }
            let e1 = s1.element(a.ids[i]);
            for j in 0..n2 {
                if a.kinds[i] != b.kinds[j] {
                    continue;
                }
                let e2 = s2.element(b.ids[j]);
                let base = lspd.lookup(&e1.name, &e2.name);
                let v = match a.kinds[i] {
                    NodeKind::Attribute => {
                        let domain = domain_compat(e1.data_type, e2.data_type);
                        let keyness = if e1.is_key && e2.is_key { cfg.keyness_bonus } else { 0.0 };
                        ((1.0 - cfg.domain_weight) * base + cfg.domain_weight * domain + keyness)
                            .min(1.0)
                    }
                    _ => base,
                };
                seed[i * n2 + j] = v;
            }
        }

        // fixpoint re-evaluation
        let mut sim = seed.clone();
        let ring_weights: Vec<f64> = {
            let raw: Vec<f64> = (1..=cfg.max_distance).map(|d| cfg.decay.powi(d as i32)).collect();
            let total: f64 = raw.iter().sum();
            raw.into_iter().map(|w| w / total).collect()
        };
        for _ in 0..cfg.iterations {
            let mut next = vec![0.0f64; n1 * n2];
            for i in 0..n1 {
                if a.kinds[i] == NodeKind::Skip || a.kinds[i] == NodeKind::Relationship {
                    continue;
                }
                for j in 0..n2 {
                    if a.kinds[i] != b.kinds[j] {
                        continue;
                    }
                    // Rings empty on both sides carry no evidence either
                    // way; normalize over the applicable rings only.
                    let mut vicinity = 0.0;
                    let mut weight_sum = 0.0;
                    for (d, w) in ring_weights.iter().enumerate() {
                        let ra = &a.neighborhoods[i][d];
                        let rb = &b.neighborhoods[j][d];
                        if ra.is_empty() && rb.is_empty() {
                            continue;
                        }
                        weight_sum += w;
                        vicinity += w * ring_match(&a, &b, i, j, d, &sim, n2);
                    }
                    if weight_sum > 0.0 {
                        vicinity /= weight_sum;
                    }
                    let seed_w = match a.kinds[i] {
                        NodeKind::Attribute => cfg.attr_seed_weight,
                        _ => cfg.entity_seed_weight,
                    };
                    let blended = seed_w * seed[i * n2 + j] + (1.0 - seed_w) * vicinity;
                    // A perfect lexical seed is never degraded by a weak
                    // vicinity (DIKE merges identically-named elements
                    // across different nestings — canonical test 5).
                    next[i * n2 + j] = blended.max(seed[i * n2 + j].min(1.0));
                }
            }
            sim = next;
        }

        // merge decisions: greedy 1:1 per kind
        let mut result = DikeResult::default();
        for (kind, out) in [
            (NodeKind::Entity, &mut result.merged_entities),
            (NodeKind::Attribute, &mut result.merged_attributes),
        ] {
            let mut pairs: Vec<(usize, usize, f64)> = Vec::new();
            for i in 0..n1 {
                if a.kinds[i] != kind {
                    continue;
                }
                for j in 0..n2 {
                    if b.kinds[j] != kind {
                        continue;
                    }
                    let v = sim[i * n2 + j];
                    if v >= cfg.merge_threshold {
                        pairs.push((i, j, v));
                    }
                }
            }
            pairs.sort_by(|x, y| {
                y.2.partial_cmp(&x.2)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(x.0.cmp(&y.0))
                    .then(x.1.cmp(&y.1))
            });
            let mut used1 = vec![false; n1];
            let mut used2 = vec![false; n2];
            for (i, j, v) in pairs {
                if used1[i] || used2[j] {
                    continue;
                }
                used1[i] = true;
                used2[j] = true;
                out.push(MergedPair {
                    source_path: a.paths[i].clone(),
                    target_path: b.paths[j].clone(),
                    similarity: v,
                });
            }
        }
        result
    }
}

/// Greedy best-pairing average over two distance-`d` rings, normalized by
/// the larger ring (size mismatches dilute the evidence).
fn ring_match(a: &Side, b: &Side, i: usize, j: usize, d: usize, sim: &[f64], n2: usize) -> f64 {
    let ra = &a.neighborhoods[i][d];
    let rb = &b.neighborhoods[j][d];
    if ra.is_empty() || rb.is_empty() {
        return 0.0;
    }
    let mut pairs: Vec<(usize, usize, f64)> = Vec::new();
    for &x in ra {
        for &y in rb {
            if a.kinds[x] == b.kinds[y] {
                let v = sim[x * n2 + y];
                if v > 0.0 {
                    pairs.push((x, y, v));
                }
            }
        }
    }
    pairs.sort_by(|p, q| q.2.partial_cmp(&p.2).unwrap_or(std::cmp::Ordering::Equal));
    let mut used_a: Vec<usize> = Vec::new();
    let mut used_b: Vec<usize> = Vec::new();
    let mut total = 0.0;
    for (x, y, v) in pairs {
        if used_a.contains(&x) || used_b.contains(&y) {
            continue;
        }
        used_a.push(x);
        used_b.push(y);
        total += v;
    }
    total / ra.len().max(rb.len()) as f64
}

fn domain_compat(a: cupid_model::DataType, b: cupid_model::DataType) -> f64 {
    if a == b {
        1.0
    } else if a.broad() == b.broad() {
        0.8
    } else {
        0.2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cupid_model::{DataType, SchemaBuilder};

    fn customer(name: &str, attrs: &[(&str, DataType)], class: &str) -> Schema {
        let mut b = SchemaBuilder::new(name);
        let c = b.structured(b.root(), class, ElementKind::Class);
        for (a, dt) in attrs {
            b.atomic(c, *a, ElementKind::Attribute, *dt);
        }
        b.build().unwrap()
    }

    const BASE: [(&str, DataType); 3] = [
        ("CustomerNumber", DataType::Int),
        ("Name", DataType::String),
        ("Address", DataType::String),
    ];

    #[test]
    fn identical_schemas_merge_without_lspd() {
        let s1 = customer("Schema1", &BASE, "Customer");
        let s2 = customer("Schema2", &BASE, "Customer");
        let r = Dike::new().run(&s1, &s2, &Lspd::default());
        assert!(r.has_entity("Schema1.Customer", "Schema2.Customer"), "{r:#?}");
        assert!(r.has_attribute("Schema1.Customer.Name", "Schema2.Customer.Name"));
        assert_eq!(r.merged_attributes.len(), 3);
    }

    #[test]
    fn renamed_attributes_require_lspd_entries() {
        // canonical test 3
        let s1 = customer("Schema1", &BASE, "Customer");
        let s2 = customer(
            "Schema2",
            &[
                ("CustomerNumberId", DataType::Int),
                ("CustomerName", DataType::String),
                ("StreetAddress", DataType::String),
            ],
            "Customer",
        );
        let without = Dike::new().run(&s1, &s2, &Lspd::default());
        assert!(
            !without.has_attribute("Schema1.Customer.Name", "Schema2.Customer.CustomerName"),
            "without LSPD the renamed attributes must not merge"
        );
        let lspd = Lspd::from_pairs([
            ("CustomerNumber", "CustomerNumberId", 1.0),
            ("Name", "CustomerName", 1.0),
            ("Address", "StreetAddress", 1.0),
        ]);
        let with = Dike::new().run(&s1, &s2, &lspd);
        assert!(with.has_attribute("Schema1.Customer.Name", "Schema2.Customer.CustomerName"));
        assert!(with.has_attribute("Schema1.Customer.Address", "Schema2.Customer.StreetAddress"));
    }

    #[test]
    fn renamed_class_merges_through_vicinity() {
        // canonical test 4: Customer vs Person, identical attributes.
        let s1 = customer("Schema1", &BASE, "Customer");
        let s2 = customer("Schema2", &BASE, "Person");
        let r = Dike::new().run(&s1, &s2, &Lspd::default());
        assert!(
            r.has_entity("Schema1.Customer", "Schema2.Person"),
            "vicinity evidence should merge the renamed classes: {r:#?}"
        );
    }

    #[test]
    fn nesting_differences_still_merge_identical_names() {
        // canonical test 5
        let mut b = SchemaBuilder::new("Schema1");
        let c = b.structured(b.root(), "Customer", ElementKind::Class);
        b.atomic(c, "SSN", ElementKind::Attribute, DataType::String);
        let nm = b.structured(c, "FullName", ElementKind::Class);
        b.atomic(nm, "FirstName", ElementKind::Attribute, DataType::String);
        b.atomic(nm, "LastName", ElementKind::Attribute, DataType::String);
        let s1 = b.build().unwrap();
        let s2 = customer(
            "Schema2",
            &[
                ("SSN", DataType::String),
                ("FirstName", DataType::String),
                ("LastName", DataType::String),
            ],
            "Customer",
        );
        let r = Dike::new().run(&s1, &s2, &Lspd::default());
        assert!(r.has_attribute("Schema1.Customer.SSN", "Schema2.Customer.SSN"));
        assert!(
            r.has_attribute("Schema1.Customer.FullName.FirstName", "Schema2.Customer.FirstName"),
            "identical names across nesting must merge: {r:#?}"
        );
    }

    #[test]
    fn shared_types_defeat_context_dependence() {
        // canonical test 6 shape: one shared Address, two target copies.
        let mut b = SchemaBuilder::new("S1");
        let po = b.structured(b.root(), "PurchaseOrder", ElementKind::Class);
        let addr = b.type_def("Address");
        b.atomic(addr, "Street", ElementKind::Attribute, DataType::String);
        b.atomic(addr, "City", ElementKind::Attribute, DataType::String);
        let ship = b.structured(po, "ShippingAddress", ElementKind::Class);
        b.derive_from(ship, addr);
        let bill = b.structured(po, "BillingAddress", ElementKind::Class);
        b.derive_from(bill, addr);
        let s1 = b.build().unwrap();

        let mut b = SchemaBuilder::new("S2");
        let po = b.structured(b.root(), "PurchaseOrder", ElementKind::Class);
        for part in ["ShippingAddress", "BillingAddress"] {
            let p = b.structured(po, part, ElementKind::Class);
            b.atomic(p, "Street", ElementKind::Attribute, DataType::String);
            b.atomic(p, "City", ElementKind::Attribute, DataType::String);
        }
        let s2 = b.build().unwrap();

        let r = Dike::new().run(&s1, &s2, &Lspd::default());
        // The single S1 Street node can merge with at most one of the two
        // S2 Street nodes: context-dependent mapping is impossible.
        let street_merges =
            r.merged_attributes.iter().filter(|m| m.source_path == "S1.Address.Street").count();
        assert!(street_merges <= 1, "shared node cannot map to both contexts: {r:#?}");
    }

    #[test]
    fn lspd_lookup_rules() {
        let mut l = Lspd::default();
        l.insert("Bill", "Invoice", 0.9);
        assert_eq!(l.lookup("bill", "INVOICE"), 0.9);
        assert_eq!(l.lookup("City", "city"), 1.0);
        assert_eq!(l.lookup("City", "Town"), 0.0);
        assert_eq!(l.len(), 1);
        l.insert("a", "b", 7.0);
        assert_eq!(l.lookup("a", "b"), 1.0); // clamped
    }
}
