//! # cupid-baselines — the comparison systems of the Cupid study (§9)
//!
//! From-scratch reimplementations of the two systems the paper compares
//! Cupid against. Neither was ever released with a published algorithmic
//! specification, so these follow the papers' and §9's descriptions of
//! their *behaviour* (see DESIGN.md §4 for the substitution argument):
//!
//! * [`dike`] — DIKE (Palopoli, Terracina, Ursino): an ER matcher whose
//!   pairwise similarities are seeded from a Lexical Synonymy Property
//!   Dictionary (LSPD), data domains and keyness, then re-evaluated from
//!   the similarity of nodes in their vicinity with distance-decayed
//!   influence; entities/attributes above a threshold are merged into an
//!   abstracted schema. It operates on the *unexpanded* schema graph, so
//!   it cannot make context-dependent matches (canonical test 6).
//! * [`artemis`] — ARTEMIS, the schema-matching component of the MOMIS
//!   mediator (Bergamaschi, Castano, Vincini): class-level name
//!   affinities from user-selected WordNet senses, structural affinities
//!   over attribute sets, hierarchical clustering into global classes and
//!   attribute fusion inside clusters. Class granularity makes it
//!   insensitive to nesting (test 5) and context (test 6).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artemis;
pub mod dike;

pub use artemis::{Artemis, ArtemisConfig, ArtemisResult, SenseDictionary};
pub use dike::{Dike, DikeConfig, DikeResult, Lspd};
