//! An ARTEMIS/MOMIS-style matcher (§9, refs \[1,3\]).
//!
//! MOMIS *"accepts schemas as class definitions. The WordNet system is
//! used to obtain name affinities among schema elements. For each element
//! name, the user chooses an appropriate word form in WordNet and narrows
//! down its possible meanings"*; ARTEMIS then *"computes the structural
//! affinity for all pairs of classes based on their name affinity and
//! their respective class attributes. The classes of the input schemas
//! are clustered into global classes of the mediated schema … The
//! attributes of clustered classes are fused, if possible."*
//!
//! The user's WordNet interaction is modeled by a [`SenseDictionary`]:
//! each element name may be assigned a *sense* (the chosen word form),
//! and sense pairs may carry affinity coefficients (synonym/hypernym
//! relationships). Without a dictionary entry, two names are
//! name-affine only when their canonical forms are equal — reproducing
//! the paper's observation that *"DIKE and MOMIS expect identical names
//! for matching schema elements in the absence of linguistic input"*.
//!
//! Behavioural properties verified against §9:
//! * class-level granularity: different nesting fails (test 5), context
//!   dependence fails (test 6);
//! * fusion happens only inside global clusters, so an attribute can be
//!   fused with a same-schema sibling (the `itemCount`/`Quantity` quirk
//!   of Table 3);
//! * attributes sharing one sense (the `Street1..4` family) collapse
//!   into one fused group instead of mapping 1:1.

use std::collections::HashMap;

use cupid_lexical::stem::stem;
use cupid_model::{DataType, ElementId, ElementKind, Schema};

/// Which schema a class/attribute came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Side {
    /// First input schema.
    Left,
    /// Second input schema.
    Right,
}

/// The user-selected WordNet senses and sense-level affinities.
#[derive(Debug, Clone, Default)]
pub struct SenseDictionary {
    /// element name (canonical) → chosen sense term.
    senses: HashMap<String, String>,
    /// symmetric sense-pair affinities (synonyms/hypernyms).
    affinities: HashMap<(String, String), f64>,
}

fn canon(s: &str) -> String {
    stem(&s.to_lowercase())
}

fn pair(a: &str, b: &str) -> (String, String) {
    let (a, b) = (canon(a), canon(b));
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl SenseDictionary {
    /// Assign a sense (word form) to an element name.
    pub fn choose_sense(&mut self, element_name: &str, sense: &str) -> &mut Self {
        self.senses.insert(canon(element_name), canon(sense));
        self
    }

    /// Record a sense-level affinity (synonym/hypernym), symmetric.
    pub fn relate(&mut self, sense_a: &str, sense_b: &str, coefficient: f64) -> &mut Self {
        self.affinities.insert(pair(sense_a, sense_b), coefficient.clamp(0.0, 1.0));
        self
    }

    /// The sense of a name: the user's choice, else the canonical name
    /// itself.
    pub fn sense_of(&self, name: &str) -> String {
        let c = canon(name);
        self.senses.get(&c).cloned().unwrap_or(c)
    }

    /// Name affinity of two element names.
    pub fn name_affinity(&self, a: &str, b: &str) -> f64 {
        let (sa, sb) = (self.sense_of(a), self.sense_of(b));
        if sa == sb {
            return 1.0;
        }
        self.affinities.get(&pair(&sa, &sb)).copied().unwrap_or(0.0)
    }
}

/// ARTEMIS control parameters.
#[derive(Debug, Clone)]
pub struct ArtemisConfig {
    /// Weight of name affinity in the global affinity
    /// `GA = λ·NA + (1−λ)·SA`.
    pub name_weight: f64,
    /// Clustering threshold on global affinity.
    pub cluster_threshold: f64,
    /// Name-affinity threshold for attribute fusion inside a cluster.
    pub fusion_threshold: f64,
}

impl Default for ArtemisConfig {
    fn default() -> Self {
        // Name affinity dominates (0.6): MOMIS clustering is driven by
        // the user's WordNet selections. The cluster threshold sits above
        // (1-λ)·SA_max, so classes with identical attribute sets but
        // unrelated names (Address vs ShipTo in canonical test 6) stay
        // apart, while name-affine classes with weak structural evidence
        // (InvoiceTo vs the address family) still cluster.
        ArtemisConfig { name_weight: 0.6, cluster_threshold: 0.55, fusion_threshold: 0.7 }
    }
}

/// A class as ARTEMIS sees it.
#[derive(Debug, Clone)]
pub struct ClassDef {
    /// Which schema.
    pub side: Side,
    /// Containment path of the class element.
    pub path: String,
    /// Class name.
    pub name: String,
    /// Attributes: `(name, path, data type)`.
    pub attributes: Vec<(String, String, DataType)>,
}

/// One fused global attribute: the member attribute paths per side.
#[derive(Debug, Clone, Default)]
pub struct FusedAttribute {
    /// Member attribute paths from the left schema.
    pub left: Vec<String>,
    /// Member attribute paths from the right schema.
    pub right: Vec<String>,
}

/// ARTEMIS output.
#[derive(Debug, Clone, Default)]
pub struct ArtemisResult {
    /// Global classes: clusters of `(side, class path)`.
    pub clusters: Vec<Vec<(Side, String)>>,
    /// Fused attributes per cluster.
    pub fused: Vec<FusedAttribute>,
}

impl ArtemisResult {
    /// True if the two class paths ended up in the same cluster.
    pub fn clustered_together(&self, left_path: &str, right_path: &str) -> bool {
        self.clusters.iter().any(|c| {
            c.contains(&(Side::Left, left_path.to_string()))
                && c.contains(&(Side::Right, right_path.to_string()))
        })
    }

    /// The cluster containing a class path, if any.
    pub fn cluster_of(&self, side: Side, path: &str) -> Option<&Vec<(Side, String)>> {
        self.clusters.iter().find(|c| c.contains(&(side, path.to_string())))
    }

    /// True if the two attribute paths were fused *and* the fusion is
    /// unambiguous (exactly one attribute per side in the group) — the
    /// paper's notion of a 1:1 attribute mapping.
    pub fn fused_one_to_one(&self, left_path: &str, right_path: &str) -> bool {
        self.fused.iter().any(|f| {
            f.left.len() == 1
                && f.right.len() == 1
                && f.left[0] == left_path
                && f.right[0] == right_path
        })
    }

    /// True if the two attribute paths share a fused group (possibly
    /// ambiguous).
    pub fn fused_together(&self, left_path: &str, right_path: &str) -> bool {
        self.fused.iter().any(|f| {
            f.left.iter().any(|p| p == left_path) && f.right.iter().any(|p| p == right_path)
        })
    }
}

/// The ARTEMIS matcher.
#[derive(Debug, Clone, Default)]
pub struct Artemis {
    config: ArtemisConfig,
}

/// Extract ARTEMIS's class view from a schema: every element that carries
/// attributes (directly, or through derived types) is a class; structured
/// children appear as complex-typed attributes of their parent class.
pub fn classes_of(schema: &Schema, side: Side) -> Vec<ClassDef> {
    let mut out = Vec::new();
    for (id, e) in schema.iter() {
        if matches!(
            e.kind,
            ElementKind::Key
                | ElementKind::ForeignKey
                | ElementKind::View
                | ElementKind::Attribute
                | ElementKind::XmlAttribute
                | ElementKind::Column
        ) {
            // attributes never become classes, even when typed by one
            // ("ShippingAddress: Address" in canonical test 6).
            continue;
        }
        let mut attrs: Vec<(String, String, DataType)> = Vec::new();
        collect_attrs(schema, id, &mut attrs);
        if attrs.is_empty() {
            continue;
        }
        out.push(ClassDef {
            side,
            path: schema.containment_path(id),
            name: e.name.clone(),
            attributes: attrs,
        });
    }
    out
}

fn collect_attrs(schema: &Schema, class: ElementId, out: &mut Vec<(String, String, DataType)>) {
    for &c in schema.children(class) {
        let e = schema.element(c);
        if matches!(e.kind, ElementKind::Key | ElementKind::ForeignKey | ElementKind::View) {
            continue;
        }
        out.push((e.name.clone(), schema.containment_path(c), e.data_type));
    }
    // type substitution at the class-definition level: members of derived
    // types become attributes (single copy — no context duplication).
    for &t in schema.derived_from(class) {
        collect_attrs(schema, t, out);
    }
}

fn type_compatible(a: DataType, b: DataType) -> bool {
    a.broad() == b.broad()
        || a.broad() == cupid_model::BroadType::Text
        || b.broad() == cupid_model::BroadType::Text
        || a == DataType::Unknown
        || b == DataType::Unknown
}

impl Artemis {
    /// Matcher with default parameters.
    pub fn new() -> Self {
        Artemis::default()
    }

    /// Matcher with custom parameters.
    pub fn with_config(config: ArtemisConfig) -> Self {
        Artemis { config }
    }

    /// Structural affinity: greedy best pairing of attribute sets by name
    /// affinity gated on type compatibility, normalized by the larger
    /// attribute set.
    fn structural_affinity(&self, a: &ClassDef, b: &ClassDef, dict: &SenseDictionary) -> f64 {
        if a.attributes.is_empty() || b.attributes.is_empty() {
            return 0.0;
        }
        let mut pairs: Vec<(usize, usize, f64)> = Vec::new();
        for (i, (an, _, at)) in a.attributes.iter().enumerate() {
            for (j, (bn, _, bt)) in b.attributes.iter().enumerate() {
                if !type_compatible(*at, *bt) {
                    continue;
                }
                let na = dict.name_affinity(an, bn);
                if na > 0.0 {
                    pairs.push((i, j, na));
                }
            }
        }
        pairs.sort_by(|x, y| y.2.partial_cmp(&x.2).unwrap_or(std::cmp::Ordering::Equal));
        let mut used_a = vec![false; a.attributes.len()];
        let mut used_b = vec![false; b.attributes.len()];
        let mut total = 0.0;
        for (i, j, v) in pairs {
            if used_a[i] || used_b[j] {
                continue;
            }
            used_a[i] = true;
            used_b[j] = true;
            total += v;
        }
        total / a.attributes.len().max(b.attributes.len()) as f64
    }

    /// Global affinity `GA = λ·NA + (1−λ)·SA`.
    fn global_affinity(&self, a: &ClassDef, b: &ClassDef, dict: &SenseDictionary) -> f64 {
        let na = dict.name_affinity(&a.name, &b.name);
        let sa = self.structural_affinity(a, b, dict);
        self.config.name_weight * na + (1.0 - self.config.name_weight) * sa
    }

    /// Run ARTEMIS over two schemas.
    pub fn run(&self, s1: &Schema, s2: &Schema, dict: &SenseDictionary) -> ArtemisResult {
        let mut classes = classes_of(s1, Side::Left);
        classes.extend(classes_of(s2, Side::Right));
        let n = classes.len();

        // pairwise global affinities
        let mut ga = vec![0.0f64; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let v = self.global_affinity(&classes[i], &classes[j], dict);
                ga[i * n + j] = v;
                ga[j * n + i] = v;
            }
        }

        // hierarchical agglomerative clustering, average linkage
        let mut cluster_of: Vec<usize> = (0..n).collect();
        loop {
            // find best inter-cluster average affinity
            let mut best: Option<(usize, usize, f64)> = None;
            for ci in 0..n {
                for cj in (ci + 1)..n {
                    let members_i: Vec<usize> = (0..n).filter(|&k| cluster_of[k] == ci).collect();
                    let members_j: Vec<usize> = (0..n).filter(|&k| cluster_of[k] == cj).collect();
                    if members_i.is_empty() || members_j.is_empty() {
                        continue;
                    }
                    let mut sum = 0.0;
                    for &x in &members_i {
                        for &y in &members_j {
                            sum += ga[x * n + y];
                        }
                    }
                    let avg = sum / (members_i.len() * members_j.len()) as f64;
                    match best {
                        Some((_, _, bv)) if bv >= avg => {}
                        _ => best = Some((ci, cj, avg)),
                    }
                }
            }
            match best {
                Some((ci, cj, v)) if v >= self.config.cluster_threshold => {
                    for c in cluster_of.iter_mut() {
                        if *c == cj {
                            *c = ci;
                        }
                    }
                }
                _ => break,
            }
        }

        // materialize clusters
        let mut clusters: Vec<Vec<(Side, String)>> = Vec::new();
        let mut fused: Vec<FusedAttribute> = Vec::new();
        let mut cluster_ids: Vec<usize> = cluster_of.clone();
        cluster_ids.sort_unstable();
        cluster_ids.dedup();
        for cid in cluster_ids {
            let members: Vec<usize> = (0..n).filter(|&k| cluster_of[k] == cid).collect();
            clusters.push(
                members.iter().map(|&k| (classes[k].side, classes[k].path.clone())).collect(),
            );
            // attribute fusion inside the cluster: group attributes by
            // fused identity. Start one group per attribute; merge groups
            // whose representative names have affinity ≥ fusion_threshold
            // and compatible types; then resolve leftovers by unique
            // compatible data type.
            let mut attrs: Vec<(Side, String, String, DataType)> = Vec::new();
            for &k in &members {
                for (an, ap, at) in &classes[k].attributes {
                    attrs.push((classes[k].side, an.clone(), ap.clone(), *at));
                }
            }
            let m = attrs.len();
            let mut group: Vec<usize> = (0..m).collect();
            for i in 0..m {
                for j in (i + 1)..m {
                    if group[j] != j {
                        continue;
                    }
                    let na = dict.name_affinity(&attrs[i].1, &attrs[j].1);
                    if na >= self.config.fusion_threshold && type_compatible(attrs[i].3, attrs[j].3)
                    {
                        let gi = group[i];
                        for g in group.iter_mut() {
                            if *g == j {
                                *g = gi;
                            }
                        }
                    }
                }
            }
            // leftover singletons: fuse by unique compatible broad type
            // across sides (this reproduces itemCount ↔ Quantity).
            let singleton = |g: &Vec<usize>, i: usize| g.iter().filter(|&&x| x == i).count() == 1;
            for i in 0..m {
                if group[i] != i || !singleton(&group, i) {
                    continue;
                }
                let candidates: Vec<usize> = (0..m)
                    .filter(|&j| {
                        j != i
                            && group[j] == j
                            && singleton(&group, j)
                            && attrs[j].3.broad() == attrs[i].3.broad()
                    })
                    .collect();
                if candidates.len() == 1 {
                    let j = candidates[0];
                    let gi = group[i];
                    group[j] = gi;
                }
            }
            // materialize fused groups with members from both sides
            let mut by_group: HashMap<usize, FusedAttribute> = HashMap::new();
            for (i, (side, _, path, _)) in attrs.iter().enumerate() {
                let f = by_group.entry(group[i]).or_default();
                match side {
                    Side::Left => f.left.push(path.clone()),
                    Side::Right => f.right.push(path.clone()),
                }
            }
            let mut groups: Vec<FusedAttribute> = by_group.into_values().collect();
            groups.retain(|f| !f.left.is_empty() || !f.right.is_empty());
            groups.sort_by(|a, b| {
                a.left.first().or(a.right.first()).cmp(&b.left.first().or(b.right.first()))
            });
            fused.extend(groups);
        }
        ArtemisResult { clusters, fused }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cupid_model::SchemaBuilder;

    fn customer(name: &str, class: &str, attrs: &[(&str, DataType)]) -> Schema {
        let mut b = SchemaBuilder::new(name);
        let c = b.structured(b.root(), class, ElementKind::Class);
        for (a, dt) in attrs {
            b.atomic(c, *a, ElementKind::Attribute, *dt);
        }
        b.build().unwrap()
    }

    const BASE: [(&str, DataType); 3] = [
        ("CustomerNumber", DataType::Int),
        ("Name", DataType::String),
        ("Address", DataType::String),
    ];

    #[test]
    fn identical_schemas_cluster_and_fuse() {
        let s1 = customer("Schema1", "Customer", &BASE);
        let s2 = customer("Schema2", "Customer", &BASE);
        let r = Artemis::new().run(&s1, &s2, &SenseDictionary::default());
        assert!(r.clustered_together("Schema1.Customer", "Schema2.Customer"));
        assert!(r.fused_one_to_one("Schema1.Customer.Name", "Schema2.Customer.Name"));
        assert!(r.fused_one_to_one(
            "Schema1.Customer.CustomerNumber",
            "Schema2.Customer.CustomerNumber"
        ));
    }

    #[test]
    fn renamed_attributes_need_user_synonyms() {
        // canonical test 3, footnote b
        let s1 = customer("Schema1", "Customer", &BASE);
        let s2 = customer(
            "Schema2",
            "Customer",
            &[
                ("CustomerNumberId", DataType::Int),
                ("CustomerName", DataType::String),
                ("StreetAddress", DataType::String),
            ],
        );
        let without = Artemis::new().run(&s1, &s2, &SenseDictionary::default());
        assert!(!without.fused_together("Schema1.Customer.Name", "Schema2.Customer.CustomerName"));
        let mut dict = SenseDictionary::default();
        dict.choose_sense("CustomerName", "name")
            .choose_sense("StreetAddress", "address")
            .choose_sense("CustomerNumberId", "customernumber");
        let with = Artemis::new().run(&s1, &s2, &dict);
        assert!(with.fused_one_to_one("Schema1.Customer.Name", "Schema2.Customer.CustomerName"));
        assert!(with.fused_one_to_one("Schema1.Customer.Address", "Schema2.Customer.StreetAddress"));
    }

    #[test]
    fn hypernym_clusters_renamed_class() {
        // canonical test 4: Person is a WordNet hypernym of Customer.
        let s1 = customer("Schema1", "Customer", &BASE);
        let s2 = customer("Schema2", "Person", &BASE);
        let mut dict = SenseDictionary::default();
        dict.relate("customer", "person", 0.8);
        let r = Artemis::new().run(&s1, &s2, &dict);
        assert!(r.clustered_together("Schema1.Customer", "Schema2.Person"), "{r:#?}");
    }

    #[test]
    fn nesting_differences_fail_at_class_level() {
        // canonical test 5: nested Name/Address classes do not cluster
        // with the flat Customer; their attributes stay unmapped.
        let mut b = SchemaBuilder::new("Schema1");
        let c = b.structured(b.root(), "Customer", ElementKind::Class);
        b.atomic(c, "SSN", ElementKind::Attribute, DataType::String);
        b.atomic(c, "Telephone", ElementKind::Attribute, DataType::String);
        let nm = b.structured(c, "Name", ElementKind::Class);
        b.atomic(nm, "FirstName", ElementKind::Attribute, DataType::String);
        b.atomic(nm, "LastName", ElementKind::Attribute, DataType::String);
        let ad = b.structured(c, "Address", ElementKind::Class);
        for f in ["Street", "City", "State", "Zip"] {
            b.atomic(ad, f, ElementKind::Attribute, DataType::String);
        }
        let s1 = b.build().unwrap();
        let s2 = customer(
            "Schema2",
            "Customer",
            &[
                ("SSN", DataType::String),
                ("Telephone", DataType::String),
                ("FirstName", DataType::String),
                ("LastName", DataType::String),
                ("Street", DataType::String),
                ("City", DataType::String),
                ("State", DataType::String),
                ("Zip", DataType::String),
            ],
        );
        let r = Artemis::new().run(&s1, &s2, &SenseDictionary::default());
        // The Customer classes cluster (paper: "MOMIS clusters the two
        // Customer classes together, but not the two other classes").
        assert!(r.clustered_together("Schema1.Customer", "Schema2.Customer"), "{r:#?}");
        assert!(!r.clustered_together("Schema1.Customer.Name", "Schema2.Customer"));
        assert!(!r.clustered_together("Schema1.Customer.Address", "Schema2.Customer"));
        // Nested attributes never reach the flat ones.
        assert!(!r.fused_together("Schema1.Customer.Name.FirstName", "Schema2.Customer.FirstName"));
    }

    #[test]
    fn context_dependence_fails() {
        // canonical test 6 shape: address-like classes stay in separate
        // clusters without dictionary support.
        let mut b = SchemaBuilder::new("S1");
        let po = b.structured(b.root(), "PurchaseOrder", ElementKind::Class);
        b.atomic(po, "OrderNumber", ElementKind::Attribute, DataType::Int);
        let addr = b.type_def("Address");
        b.atomic(addr, "Street", ElementKind::Attribute, DataType::String);
        b.atomic(addr, "City", ElementKind::Attribute, DataType::String);
        let sa = b.structured(po, "ShippingAddress", ElementKind::Attribute);
        b.derive_from(sa, addr);
        let s1 = b.build().unwrap();

        let mut b = SchemaBuilder::new("S2");
        let po = b.structured(b.root(), "PurchaseOrder", ElementKind::Class);
        b.atomic(po, "OrderNumber", ElementKind::Attribute, DataType::Int);
        let st = b.type_def("ShipTo");
        b.atomic(st, "Street", ElementKind::Attribute, DataType::String);
        b.atomic(st, "City", ElementKind::Attribute, DataType::String);
        let sa = b.structured(po, "ShippingAddress", ElementKind::Attribute);
        b.derive_from(sa, st);
        let s2 = b.build().unwrap();

        let r = Artemis::new().run(&s1, &s2, &SenseDictionary::default());
        assert!(r.clustered_together("S1.PurchaseOrder", "S2.PurchaseOrder"));
        // Address vs ShipTo: no name affinity → separate clusters.
        assert!(!r.clustered_together("S1.Address", "S2.ShipTo"), "{r:#?}");
    }

    #[test]
    fn shared_sense_collapses_street_family() {
        // Table 3: "the Street(1…4) attributes in the two schemas are not
        // mapped 1:1".
        let s1 = customer(
            "S1",
            "Address",
            &[("Street1", DataType::String), ("Street2", DataType::String)],
        );
        let s2 = customer(
            "S2",
            "Address",
            &[("street1", DataType::String), ("street2", DataType::String)],
        );
        let mut dict = SenseDictionary::default();
        for n in ["Street1", "Street2"] {
            dict.choose_sense(n, "street");
        }
        let r = Artemis::new().run(&s1, &s2, &dict);
        // All four street attributes fuse into one ambiguous group.
        assert!(!r.fused_one_to_one("S1.Address.Street1", "S2.Address.street1"));
        assert!(r.fused_together("S1.Address.Street1", "S2.Address.street2"));
    }
}
