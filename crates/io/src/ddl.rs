//! A SQL DDL subset: `CREATE TABLE` statements with column types,
//! `PRIMARY KEY` and `FOREIGN KEY … REFERENCES` clauses — enough to
//! express the Figure-8 schemas from their SQL form.
//!
//! ```sql
//! CREATE TABLE Customers (
//!     CustomerID INTEGER PRIMARY KEY,
//!     CompanyName VARCHAR(40) NOT NULL,
//!     PostalCode VARCHAR(10)
//! );
//! CREATE TABLE Orders (
//!     OrderID INTEGER PRIMARY KEY,
//!     CustomerID INTEGER,
//!     FOREIGN KEY (CustomerID) REFERENCES Customers (CustomerID)
//! );
//! ```
//!
//! Keywords are case-insensitive. Columns are nullable (→ optional)
//! unless `NOT NULL` or `PRIMARY KEY` is present.

use std::collections::HashMap;

use cupid_model::{DataType, ElementId, Schema, SchemaBuilder};

use crate::ParseError;

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Word(String),
    Punct(char),
}

fn tokenize(text: &str) -> Vec<(usize, Tok)> {
    let mut out = Vec::new();
    let mut word = String::new();
    let mut line = 1;
    let mut word_line = 1;
    let mut in_comment = false;
    for c in text.chars() {
        if c == '\n' {
            line += 1;
            in_comment = false;
        }
        if in_comment {
            continue;
        }
        match c {
            '-' if word == "-" => {
                // "--" comment
                word.clear();
                in_comment = true;
            }
            c if c.is_alphanumeric() || c == '_' || c == '-' => {
                if word.is_empty() {
                    word_line = line;
                }
                word.push(c);
            }
            _ => {
                if !word.is_empty() {
                    out.push((word_line, Tok::Word(std::mem::take(&mut word))));
                }
                if matches!(c, '(' | ')' | ',' | ';') {
                    out.push((line, Tok::Punct(c)));
                }
            }
        }
    }
    if !word.is_empty() {
        out.push((word_line, Tok::Word(word)));
    }
    out
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn line(&self) -> usize {
        self.toks.get(self.pos.min(self.toks.len().saturating_sub(1))).map(|(l, _)| *l).unwrap_or(0)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    fn eat_word(&mut self, kw: &str) -> bool {
        if let Some(Tok::Word(w)) = self.peek() {
            if w.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_word(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Word(w)) => Ok(w),
            other => Err(ParseError {
                line: self.line(),
                message: format!("expected identifier, found {other:?}"),
            }),
        }
    }

    fn expect_punct(&mut self, c: char) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Punct(p)) if p == c => Ok(()),
            other => Err(ParseError {
                line: self.line(),
                message: format!("expected `{c}`, found {other:?}"),
            }),
        }
    }

    /// Skip a parenthesized group like `(40)` or `(10,2)`.
    fn skip_parens(&mut self) {
        if self.peek() == Some(&Tok::Punct('(')) {
            let mut depth = 0;
            while let Some(t) = self.next() {
                match t {
                    Tok::Punct('(') => depth += 1,
                    Tok::Punct(')') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    /// Parse a parenthesized identifier list `(a, b, c)`.
    fn ident_list(&mut self) -> Result<Vec<String>, ParseError> {
        self.expect_punct('(')?;
        let mut out = Vec::new();
        loop {
            out.push(self.expect_word()?);
            match self.next() {
                Some(Tok::Punct(',')) => continue,
                Some(Tok::Punct(')')) => break,
                other => {
                    return Err(ParseError {
                        line: self.line(),
                        message: format!("expected `,` or `)`, found {other:?}"),
                    })
                }
            }
        }
        Ok(out)
    }
}

struct PendingFk {
    table: String,
    columns: Vec<String>,
    target_table: String,
    line: usize,
}

/// Parse a DDL script into a schema named `schema_name`.
pub fn parse_ddl(schema_name: &str, text: &str) -> Result<Schema, ParseError> {
    let mut p = Parser { toks: tokenize(text), pos: 0 };
    let mut b = SchemaBuilder::new(schema_name);
    let mut tables: HashMap<String, ElementId> = HashMap::new();
    let mut columns: HashMap<(String, String), ElementId> = HashMap::new();
    let mut pks: HashMap<String, ElementId> = HashMap::new();
    let mut pending_fks: Vec<PendingFk> = Vec::new();

    while p.peek().is_some() {
        if !p.eat_word("CREATE") {
            return Err(ParseError { line: p.line(), message: "expected CREATE TABLE".into() });
        }
        if !p.eat_word("TABLE") {
            return Err(ParseError { line: p.line(), message: "expected TABLE".into() });
        }
        let tname = p.expect_word()?;
        let table = b.table(&tname);
        tables.insert(tname.to_lowercase(), table);
        p.expect_punct('(')?;
        let mut pk_cols: Vec<ElementId> = Vec::new();
        loop {
            if p.eat_word("PRIMARY") {
                if !p.eat_word("KEY") {
                    return Err(ParseError { line: p.line(), message: "expected KEY".into() });
                }
                for c in p.ident_list()? {
                    let id = columns.get(&(tname.to_lowercase(), c.to_lowercase())).ok_or(
                        ParseError { line: p.line(), message: format!("unknown key column `{c}`") },
                    )?;
                    pk_cols.push(*id);
                }
            } else if p.eat_word("FOREIGN") {
                if !p.eat_word("KEY") {
                    return Err(ParseError { line: p.line(), message: "expected KEY".into() });
                }
                let cols = p.ident_list()?;
                if !p.eat_word("REFERENCES") {
                    return Err(ParseError {
                        line: p.line(),
                        message: "expected REFERENCES".into(),
                    });
                }
                let target = p.expect_word()?;
                p.skip_parens(); // referenced column list (informational)
                pending_fks.push(PendingFk {
                    table: tname.clone(),
                    columns: cols,
                    target_table: target,
                    line: p.line(),
                });
            } else {
                // column definition: NAME TYPE [(args)] [constraints…]
                let cname = p.expect_word()?;
                let ctype = p.expect_word()?;
                p.skip_parens();
                let mut optional = true;
                // consume constraint words until , or )
                loop {
                    match p.peek() {
                        Some(Tok::Punct(',')) | Some(Tok::Punct(')')) | None => break,
                        Some(Tok::Word(w)) => {
                            let w = w.clone();
                            p.pos += 1;
                            if w.eq_ignore_ascii_case("NOT") {
                                // NOT NULL
                                optional = false;
                            } else if w.eq_ignore_ascii_case("PRIMARY") {
                                optional = false;
                                // inline PRIMARY KEY
                                let _ = p.eat_word("KEY");
                                let id = b.column(table, &cname, DataType::parse(&ctype));
                                columns.insert((tname.to_lowercase(), cname.to_lowercase()), id);
                                pk_cols.push(id);
                            }
                        }
                        Some(Tok::Punct(_)) => {
                            p.pos += 1;
                        }
                    }
                }
                columns
                    .entry((tname.to_lowercase(), cname.to_lowercase()))
                    .or_insert_with(|| b.column(table, &cname, DataType::parse(&ctype)));
                let id = columns[&(tname.to_lowercase(), cname.to_lowercase())];
                b.set_optional(id, optional);
            }
            match p.next() {
                Some(Tok::Punct(',')) => continue,
                Some(Tok::Punct(')')) => break,
                other => {
                    return Err(ParseError {
                        line: p.line(),
                        message: format!("expected `,` or `)`, found {other:?}"),
                    })
                }
            }
        }
        let _ = p.expect_punct(';');
        if !pk_cols.is_empty() {
            let pk = b.primary_key(table, &pk_cols);
            pks.insert(tname.to_lowercase(), pk);
            for &c in &pk_cols {
                b.set_optional(c, false);
            }
        }
    }

    for fk in pending_fks {
        let table = *tables.get(&fk.table.to_lowercase()).expect("own table exists");
        let target_pk = pks.get(&fk.target_table.to_lowercase()).ok_or(ParseError {
            line: fk.line,
            message: format!("foreign key references unknown table `{}`", fk.target_table),
        })?;
        let cols: Result<Vec<ElementId>, ParseError> = fk
            .columns
            .iter()
            .map(|c| {
                columns.get(&(fk.table.to_lowercase(), c.to_lowercase())).copied().ok_or(
                    ParseError {
                        line: fk.line,
                        message: format!("foreign key uses unknown column `{c}`"),
                    },
                )
            })
            .collect();
        b.foreign_key(table, format!("{}-{}-fk", fk.table, fk.target_table), &cols?, *target_pk);
    }
    b.build().map_err(|e| ParseError { line: 0, message: e.to_string() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cupid_model::{expand, ElementKind, ExpandOptions};

    const SQL: &str = "\
-- operational schema
CREATE TABLE Customers (
    CustomerID INTEGER PRIMARY KEY,
    CompanyName VARCHAR(40) NOT NULL,
    PostalCode VARCHAR(10)
);
CREATE TABLE Orders (
    OrderID INTEGER PRIMARY KEY,
    CustomerID INTEGER NOT NULL,
    OrderDate DATETIME,
    FOREIGN KEY (CustomerID) REFERENCES Customers (CustomerID)
);
";

    #[test]
    fn parses_tables_columns_keys() {
        let s = parse_ddl("RDB", SQL).unwrap();
        assert_eq!(s.name(), "RDB");
        let orders = s.find("Orders").unwrap();
        assert_eq!(s.element(orders).kind, ElementKind::Table);
        let oid = s.find_path("RDB.Orders.OrderID").unwrap();
        assert!(s.element(oid).is_key);
        assert!(!s.element(oid).optional);
        let date = s.find_path("RDB.Orders.OrderDate").unwrap();
        assert!(s.element(date).optional, "nullable column is optional");
        assert_eq!(s.element(date).data_type, DataType::DateTime);
        assert_eq!(s.foreign_keys().len(), 1);
    }

    #[test]
    fn join_views_reify_from_parsed_fks() {
        let s = parse_ddl("RDB", SQL).unwrap();
        let t = expand(&s, &ExpandOptions::all()).unwrap();
        let join = t.find_path("RDB.Orders-Customers-fk").expect("join view");
        assert_eq!(t.node(join).children.len(), 3 + 3);
    }

    #[test]
    fn unknown_reference_fails() {
        let err = parse_ddl(
            "S",
            "CREATE TABLE A (X INTEGER PRIMARY KEY, FOREIGN KEY (X) REFERENCES Nope (Y));",
        )
        .unwrap_err();
        assert!(err.message.contains("Nope"), "{err}");
    }

    #[test]
    fn garbage_fails_with_line() {
        let err = parse_ddl("S", "DROP TABLE x;").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn case_insensitive_keywords() {
        let s = parse_ddl("S", "create table T (a integer primary key);").unwrap();
        assert!(s.find("T").is_some());
        assert!(s.find("a").is_some());
    }
}
