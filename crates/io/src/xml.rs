//! Schema inference from XML document instances.
//!
//! Given a well-formed XML document, build the schema tree it implies:
//! elements become structured schema elements (merged by tag across
//! repeats), attributes and text-only elements become atomic elements
//! with types inferred from their values (`int`, `decimal`, `date`,
//! `bool`, falling back to `string`).
//!
//! The parser is a hand-written, non-validating subset: elements,
//! attributes, text, comments, XML declarations and self-closing tags.
//! No namespaces, CDATA, or DTDs (the corpus schemas do not need them).

use std::collections::HashMap;

use cupid_model::{DataType, ElementId, ElementKind, Schema, SchemaBuilder};

use crate::ParseError;

#[derive(Debug, Default)]
struct Inferred {
    children: Vec<String>,
    child_index: HashMap<String, usize>,
    attrs: Vec<(String, DataType)>,
    attr_index: HashMap<String, usize>,
    text_type: Option<DataType>,
    /// seen more than once under one parent → repeating (informational)
    repeats: bool,
}

#[derive(Debug, Default)]
struct Inference {
    /// path (joined by '/') → node info
    nodes: HashMap<String, Inferred>,
}

fn infer_type(value: &str) -> DataType {
    let v = value.trim();
    if v.is_empty() {
        return DataType::String;
    }
    if v.parse::<i64>().is_ok() {
        return DataType::Int;
    }
    if v.parse::<f64>().is_ok() {
        return DataType::Decimal;
    }
    if matches!(v, "true" | "false" | "TRUE" | "FALSE") {
        return DataType::Bool;
    }
    // ISO-ish dates: 2001-08-27 or 2001/08/27
    let b = v.as_bytes();
    if b.len() == 10
        && b[0..4].iter().all(u8::is_ascii_digit)
        && (b[4] == b'-' || b[4] == b'/')
        && b[5..7].iter().all(u8::is_ascii_digit)
        && (b[7] == b'-' || b[7] == b'/')
        && b[8..10].iter().all(u8::is_ascii_digit)
    {
        return DataType::Date;
    }
    DataType::String
}

fn merge_type(old: DataType, new: DataType) -> DataType {
    use DataType::*;
    if old == new {
        return old;
    }
    match (old, new) {
        (Int, Decimal) | (Decimal, Int) => Decimal,
        _ => String,
    }
}

struct XmlParser<'a> {
    text: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> XmlParser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { line: self.line, message: message.into() }
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.text.get(self.pos).copied();
        if c == Some(b'\n') {
            self.line += 1;
        }
        self.pos += 1;
        c
    }

    fn peek(&self) -> Option<u8> {
        self.text.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    fn read_name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.bump();
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.text[start..self.pos]).into_owned())
    }

    fn skip_prolog_and_comments(&mut self) {
        loop {
            self.skip_ws();
            if self.text[self.pos..].starts_with(b"<?") {
                while let Some(c) = self.bump() {
                    if c == b'>' {
                        break;
                    }
                }
            } else if self.text[self.pos..].starts_with(b"<!--") {
                while self.pos < self.text.len() && !self.text[self.pos..].starts_with(b"-->") {
                    self.bump();
                }
                self.pos += 3.min(self.text.len() - self.pos);
            } else {
                break;
            }
        }
    }

    /// Parse one element (cursor on `<`). Records structure into `inf`.
    fn parse_element(&mut self, path: &str, inf: &mut Inference) -> Result<String, ParseError> {
        if self.bump() != Some(b'<') {
            return Err(self.err("expected `<`"));
        }
        let name = self.read_name()?;
        let my_path = if path.is_empty() { name.clone() } else { format!("{path}/{name}") };
        let mut attrs: Vec<(String, String)> = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.bump();
                    if self.bump() != Some(b'>') {
                        return Err(self.err("expected `/>`"));
                    }
                    self.record(&my_path, &attrs, None, inf);
                    return Ok(name);
                }
                Some(b'>') => {
                    self.bump();
                    break;
                }
                Some(_) => {
                    let aname = self.read_name()?;
                    self.skip_ws();
                    if self.bump() != Some(b'=') {
                        return Err(self.err("expected `=`"));
                    }
                    self.skip_ws();
                    let quote = self.bump().ok_or_else(|| self.err("unexpected eof"))?;
                    if quote != b'"' && quote != b'\'' {
                        return Err(self.err("expected quoted attribute value"));
                    }
                    let start = self.pos;
                    while self.peek() != Some(quote) {
                        if self.bump().is_none() {
                            return Err(self.err("unterminated attribute value"));
                        }
                    }
                    let value = String::from_utf8_lossy(&self.text[start..self.pos]).into_owned();
                    self.bump(); // closing quote
                    attrs.push((aname, value));
                }
                None => return Err(self.err("unexpected eof in tag")),
            }
        }
        // content
        let mut text = String::new();
        let mut seen_children: HashMap<String, usize> = HashMap::new();
        loop {
            match self.peek() {
                Some(b'<') => {
                    if self.text[self.pos..].starts_with(b"</") {
                        self.pos += 2;
                        let close = self.read_name()?;
                        if close != name {
                            return Err(self.err(format!(
                                "mismatched close tag `{close}` (open was `{name}`)"
                            )));
                        }
                        self.skip_ws();
                        if self.bump() != Some(b'>') {
                            return Err(self.err("expected `>`"));
                        }
                        break;
                    } else if self.text[self.pos..].starts_with(b"<!--") {
                        while self.pos < self.text.len()
                            && !self.text[self.pos..].starts_with(b"-->")
                        {
                            self.bump();
                        }
                        self.pos += 3.min(self.text.len() - self.pos);
                    } else {
                        let child = self.parse_element(&my_path, inf)?;
                        let n = seen_children.entry(child.clone()).or_insert(0);
                        *n += 1;
                        if *n > 1 {
                            if let Some(node) = inf.nodes.get_mut(&format!("{my_path}/{child}")) {
                                node.repeats = true;
                            }
                        }
                    }
                }
                Some(_) => {
                    text.push(self.bump().unwrap() as char);
                }
                None => return Err(self.err(format!("unexpected eof inside `{name}`"))),
            }
        }
        let text_type = if text.trim().is_empty() || !seen_children.is_empty() {
            None
        } else {
            Some(infer_type(&text))
        };
        self.record(&my_path, &attrs, text_type, inf);
        Ok(name)
    }

    fn record(
        &self,
        path: &str,
        attrs: &[(String, String)],
        text_type: Option<DataType>,
        inf: &mut Inference,
    ) {
        let node = inf.nodes.entry(path.to_string()).or_default();
        for (a, v) in attrs {
            let t = infer_type(v);
            match node.attr_index.get(a) {
                Some(&i) => node.attrs[i].1 = merge_type(node.attrs[i].1, t),
                None => {
                    node.attr_index.insert(a.clone(), node.attrs.len());
                    node.attrs.push((a.clone(), t));
                }
            }
        }
        if let Some(t) = text_type {
            node.text_type = Some(match node.text_type {
                Some(old) => merge_type(old, t),
                None => t,
            });
        }
        // children recorded by parse_element recursion via record of child
        // paths; wire up the parent's child list here.
        if let Some((parent, name)) = path.rsplit_once('/') {
            let pnode = inf.nodes.entry(parent.to_string()).or_default();
            if !pnode.child_index.contains_key(name) {
                pnode.child_index.insert(name.to_string(), pnode.children.len());
                pnode.children.push(name.to_string());
            }
        }
    }
}

fn emit(inf: &Inference, path: &str, name: &str, b: &mut SchemaBuilder, parent: ElementId) {
    let node = match inf.nodes.get(path) {
        Some(n) => n,
        None => return,
    };
    let is_atomic = node.children.is_empty() && node.attrs.is_empty();
    if is_atomic {
        b.atomic(parent, name, ElementKind::XmlElement, node.text_type.unwrap_or(DataType::String));
        return;
    }
    let id = b.structured(parent, name, ElementKind::XmlElement);
    for (a, t) in &node.attrs {
        b.atomic(id, a, ElementKind::XmlAttribute, *t);
    }
    for c in &node.children {
        emit(inf, &format!("{path}/{c}"), c, b, id);
    }
}

/// Infer a schema from an XML document. The root element becomes the
/// schema root.
pub fn schema_from_xml(text: &str) -> Result<Schema, ParseError> {
    let mut p = XmlParser { text: text.as_bytes(), pos: 0, line: 1 };
    p.skip_prolog_and_comments();
    if p.peek() != Some(b'<') {
        return Err(p.err("expected a root element"));
    }
    let mut inf = Inference::default();
    let root_name = p.parse_element("", &mut inf)?;
    let root = inf
        .nodes
        .get(&root_name)
        .ok_or(ParseError { line: 0, message: "empty document".into() })?;
    let mut b = SchemaBuilder::new(&root_name);
    let root_id = b.root();
    for (a, t) in &root.attrs {
        b.atomic(root_id, a, ElementKind::XmlAttribute, *t);
    }
    for c in root.children.clone() {
        emit(&inf, &format!("{root_name}/{c}"), &c, &mut b, root_id);
    }
    b.build().map_err(|e| ParseError { line: 0, message: e.to_string() })
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"<?xml version="1.0"?>
<!-- a purchase order instance -->
<PurchaseOrder>
  <Header orderNum="A123" orderDate="2001-08-27"/>
  <Items itemCount="2">
    <Item itemNumber="1" Quantity="10" unitPrice="2.50">
      <partDescription>blue widget</partDescription>
    </Item>
    <Item itemNumber="2" Quantity="4" unitPrice="12.00">
      <partDescription>red widget</partDescription>
    </Item>
  </Items>
</PurchaseOrder>
"#;

    #[test]
    fn infers_structure_and_types() {
        let s = schema_from_xml(DOC).unwrap();
        assert_eq!(s.name(), "PurchaseOrder");
        let qty = s.find_path("PurchaseOrder.Items.Item.Quantity").unwrap();
        assert_eq!(s.element(qty).data_type, DataType::Int);
        let price = s.find_path("PurchaseOrder.Items.Item.unitPrice").unwrap();
        assert_eq!(s.element(price).data_type, DataType::Decimal);
        let date = s.find_path("PurchaseOrder.Header.orderDate").unwrap();
        assert_eq!(s.element(date).data_type, DataType::Date);
        let desc = s.find_path("PurchaseOrder.Items.Item.partDescription").unwrap();
        assert_eq!(s.element(desc).data_type, DataType::String);
    }

    #[test]
    fn repeated_elements_merge() {
        let s = schema_from_xml(DOC).unwrap();
        // two <Item> instances merge into one schema element
        let items: Vec<_> = s.iter().filter(|(_, e)| e.name == "Item").collect();
        assert_eq!(items.len(), 1);
    }

    #[test]
    fn type_widening_across_instances() {
        let doc = r#"<R><V x="1"/><V x="2.5"/></R>"#;
        let s = schema_from_xml(doc).unwrap();
        let x = s.find_path("R.V.x").unwrap();
        assert_eq!(s.element(x).data_type, DataType::Decimal);
        let doc = r#"<R><V x="1"/><V x="hello"/></R>"#;
        let s = schema_from_xml(doc).unwrap();
        let x = s.find_path("R.V.x").unwrap();
        assert_eq!(s.element(x).data_type, DataType::String);
    }

    #[test]
    fn malformed_documents_fail() {
        assert!(schema_from_xml("<A><B></A>").is_err());
        assert!(schema_from_xml("not xml").is_err());
        assert!(schema_from_xml("<A x=unquoted/>").is_err());
        assert!(schema_from_xml("<A>").is_err());
    }

    #[test]
    fn self_closing_and_comments() {
        let s = schema_from_xml("<R><!-- c --><Leaf/></R>").unwrap();
        assert!(s.find_path("R.Leaf").is_some());
    }

    #[test]
    fn inferred_schema_feeds_the_matcher() {
        let s1 = schema_from_xml(DOC).unwrap();
        let s2 = schema_from_xml(&DOC.replace("Quantity", "Qty")).unwrap();
        let thesaurus = cupid_lexical::Thesaurus::parse("abbrev Qty = quantity").unwrap();
        let out = cupid_core::Cupid::new(thesaurus).match_schemas(&s1, &s2).unwrap();
        assert!(out
            .has_leaf_mapping("PurchaseOrder.Items.Item.Quantity", "PurchaseOrder.Items.Item.Qty"));
    }
}
