//! The schema description language (SDL): an indentation-based text
//! format for schema graphs.
//!
//! ```text
//! schema PurchaseOrder
//!   type Address
//!     attr Street : string
//!     attr City : string
//!   element DeliverTo uses Address
//!   element InvoiceTo uses Address
//!   element Items
//!     attr ItemCount : int
//!     element Item
//!       attr Quantity : decimal optional
//! ```
//!
//! Directives: `schema NAME` (first line), `element NAME [uses TYPE…]`,
//! `type NAME` (a shared type definition), `attr NAME : TYPE [optional]
//! [key]`. Indentation is two spaces per level; `#` starts a comment.

use std::collections::HashMap;

use cupid_model::{DataType, ElementId, ElementKind, Schema, SchemaBuilder};

use crate::ParseError;

struct Line<'a> {
    no: usize,
    indent: usize,
    words: Vec<&'a str>,
}

fn lex(text: &str) -> Result<Vec<Line<'_>>, ParseError> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let no = i + 1;
        let content = raw.split('#').next().unwrap_or("");
        if content.trim().is_empty() {
            continue;
        }
        let spaces = content.len() - content.trim_start_matches(' ').len();
        if spaces % 2 != 0 {
            return Err(ParseError {
                line: no,
                message: "indentation must be a multiple of two spaces".into(),
            });
        }
        out.push(Line { no, indent: spaces / 2, words: content.split_whitespace().collect() });
    }
    Ok(out)
}

/// Parse an SDL document into a schema.
pub fn parse_sdl(text: &str) -> Result<Schema, ParseError> {
    let lines = lex(text)?;
    let mut iter = lines.iter();
    let first = iter.next().ok_or(ParseError { line: 0, message: "empty document".into() })?;
    if first.words.len() != 2 || first.words[0] != "schema" || first.indent != 0 {
        return Err(ParseError {
            line: first.no,
            message: "document must start with `schema NAME`".into(),
        });
    }
    let mut b = SchemaBuilder::new(first.words[1]);
    // stack of (indent-level, element) — the parent of a line at indent d
    // is the top entry with level d-1.
    let mut stack: Vec<(usize, ElementId)> = vec![(0, b.root())];
    // `uses` clauses are resolved after all types are declared.
    let mut pending_uses: Vec<(usize, ElementId, String)> = Vec::new();
    let mut types: HashMap<String, ElementId> = HashMap::new();

    for line in iter {
        if line.indent == 0 {
            return Err(ParseError {
                line: line.no,
                message: "only the schema line may be at indent 0".into(),
            });
        }
        while stack.last().map(|&(d, _)| d >= line.indent).unwrap_or(false) {
            stack.pop();
        }
        let &(pdepth, parent) = stack.last().ok_or(ParseError {
            line: line.no,
            message: "indentation jumped past the schema root".into(),
        })?;
        if pdepth + 1 != line.indent {
            return Err(ParseError {
                line: line.no,
                message: format!("indent {} has no parent at {}", line.indent, line.indent - 1),
            });
        }
        match line.words[0] {
            "element" | "type" => {
                if line.words.len() < 2 {
                    return Err(ParseError { line: line.no, message: "missing name".into() });
                }
                let name = line.words[1];
                let id = if line.words[0] == "type" {
                    if line.indent != 1 {
                        return Err(ParseError {
                            line: line.no,
                            message: "type definitions live at top level".into(),
                        });
                    }
                    let t = b.type_def(name);
                    types.insert(name.to_string(), t);
                    t
                } else {
                    b.structured(parent, name, ElementKind::XmlElement)
                };
                let mut rest = line.words[2..].iter();
                while let Some(&w) = rest.next() {
                    match w {
                        "uses" => {
                            let ty = rest.next().ok_or(ParseError {
                                line: line.no,
                                message: "`uses` needs a type name".into(),
                            })?;
                            pending_uses.push((line.no, id, (*ty).to_string()));
                        }
                        "optional" => {
                            b.set_optional(id, true);
                        }
                        other => {
                            return Err(ParseError {
                                line: line.no,
                                message: format!("unknown modifier `{other}`"),
                            })
                        }
                    }
                }
                stack.push((line.indent, id));
            }
            "attr" => {
                // attr NAME : TYPE [optional] [key]
                let colon = line.words.iter().position(|&w| w == ":").ok_or(ParseError {
                    line: line.no,
                    message: "expected `attr NAME : TYPE`".into(),
                })?;
                if colon != 2 || line.words.len() < 4 {
                    return Err(ParseError {
                        line: line.no,
                        message: "expected `attr NAME : TYPE`".into(),
                    });
                }
                let id = b.atomic(
                    parent,
                    line.words[1],
                    ElementKind::XmlAttribute,
                    DataType::parse(line.words[3]),
                );
                for &w in &line.words[4..] {
                    match w {
                        "optional" => {
                            b.set_optional(id, true);
                        }
                        "key" => {
                            b.set_key(id, true);
                        }
                        other => {
                            return Err(ParseError {
                                line: line.no,
                                message: format!("unknown modifier `{other}`"),
                            })
                        }
                    }
                }
            }
            other => {
                return Err(ParseError {
                    line: line.no,
                    message: format!("unknown directive `{other}`"),
                })
            }
        }
    }
    for (no, id, ty) in pending_uses {
        let t = types
            .get(&ty)
            .ok_or(ParseError { line: no, message: format!("unknown type `{ty}`") })?;
        b.derive_from(id, *t);
    }
    b.build().map_err(|e| ParseError { line: 0, message: e.to_string() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cupid_model::{expand, ExpandOptions};

    const DOC: &str = "\
# the running example
schema PurchaseOrder
  type Address
    attr Street : string
    attr City : string
  element DeliverTo uses Address
  element InvoiceTo uses Address
  element Items
    attr ItemCount : int
    element Item
      attr ItemNumber : int key
      attr Quantity : decimal optional
";

    #[test]
    fn parses_the_running_example() {
        let s = parse_sdl(DOC).unwrap();
        assert_eq!(s.name(), "PurchaseOrder");
        let t = expand(&s, &ExpandOptions::none()).unwrap();
        assert!(t.find_path("PurchaseOrder.DeliverTo.Street").is_some());
        assert!(t.find_path("PurchaseOrder.InvoiceTo.City").is_some());
        assert!(t.find_path("PurchaseOrder.Items.Item.Quantity").is_some());
        let qty = s.find("Quantity").unwrap();
        assert!(s.element(qty).optional);
        assert_eq!(s.element(qty).data_type, DataType::Decimal);
        let num = s.find("ItemNumber").unwrap();
        assert!(s.element(num).is_key);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_sdl("schema S\n  frobnicate X\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse_sdl("element X\n").unwrap_err();
        assert_eq!(err.line, 1);
        let err = parse_sdl("schema S\n   attr A : int\n").unwrap_err();
        assert_eq!(err.line, 2); // 3 spaces
        let err = parse_sdl("schema S\n    attr A : int\n").unwrap_err();
        assert_eq!(err.line, 2); // indent jump
    }

    #[test]
    fn unknown_type_reference_fails() {
        let err = parse_sdl("schema S\n  element E uses Nope\n").unwrap_err();
        assert!(err.message.contains("Nope"));
    }

    #[test]
    fn empty_document_fails() {
        assert!(parse_sdl("").is_err());
        assert!(parse_sdl("# only a comment\n").is_err());
    }

    #[test]
    fn round_trips_through_cupid() {
        // A parsed schema is a first-class citizen of the matcher.
        let s1 = parse_sdl(DOC).unwrap();
        let s2 = parse_sdl(DOC.replace("PurchaseOrder", "PO").as_str()).unwrap();
        let cupid = cupid_core::Cupid::new(cupid_lexical::Thesaurus::with_default_stopwords());
        let out = cupid.match_schemas(&s1, &s2).unwrap();
        assert!(out.has_leaf_mapping("PurchaseOrder.Items.Item.Quantity", "PO.Items.Item.Quantity"));
    }
}
