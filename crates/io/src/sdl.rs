//! The schema description language (SDL): an indentation-based text
//! format for schema graphs.
//!
//! ```text
//! schema PurchaseOrder
//!   type Address
//!     attr Street : string
//!     attr City : string
//!   element DeliverTo uses Address
//!   element InvoiceTo uses Address
//!   element Items
//!     attr ItemCount : int
//!     element Item
//!       attr Quantity : decimal optional
//! ```
//!
//! Directives: `schema NAME` (first line), `element NAME [uses TYPE…]`
//! for structured elements, `element NAME : TYPE [optional] [key]` for
//! atomic (leaf) elements, `type NAME` (a shared type definition),
//! `attr NAME : TYPE [optional] [key]`. Indentation is two spaces per
//! level; `#` starts a comment.
//!
//! [`write_sdl`] is the inverse: it renders a schema back into this
//! format, so SDL is a faithful on-disk *export* format, not only an
//! input one — the persistent repository uses it for schema
//! export/import (DESIGN.md §8). `parse → write → parse` is the
//! identity on everything SDL can express, which
//! `tests/io_roundtrip.rs` proves over randomized schemas.

use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;

use cupid_model::{DataType, ElementId, ElementKind, Schema, SchemaBuilder};

use crate::ParseError;

struct Line<'a> {
    no: usize,
    indent: usize,
    words: Vec<&'a str>,
}

fn lex(text: &str) -> Result<Vec<Line<'_>>, ParseError> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let no = i + 1;
        let content = raw.split('#').next().unwrap_or("");
        if content.trim().is_empty() {
            continue;
        }
        let spaces = content.len() - content.trim_start_matches(' ').len();
        if spaces % 2 != 0 {
            return Err(ParseError {
                line: no,
                message: "indentation must be a multiple of two spaces".into(),
            });
        }
        out.push(Line { no, indent: spaces / 2, words: content.split_whitespace().collect() });
    }
    Ok(out)
}

/// Parse an SDL document into a schema.
pub fn parse_sdl(text: &str) -> Result<Schema, ParseError> {
    let lines = lex(text)?;
    let mut iter = lines.iter();
    let first = iter.next().ok_or(ParseError { line: 0, message: "empty document".into() })?;
    if first.words.len() != 2 || first.words[0] != "schema" || first.indent != 0 {
        return Err(ParseError {
            line: first.no,
            message: "document must start with `schema NAME`".into(),
        });
    }
    let mut b = SchemaBuilder::new(first.words[1]);
    // stack of (indent-level, element) — the parent of a line at indent d
    // is the top entry with level d-1.
    let mut stack: Vec<(usize, ElementId)> = vec![(0, b.root())];
    // `uses` clauses are resolved after all types are declared.
    let mut pending_uses: Vec<(usize, ElementId, String)> = Vec::new();
    let mut types: HashMap<String, ElementId> = HashMap::new();

    for line in iter {
        if line.indent == 0 {
            return Err(ParseError {
                line: line.no,
                message: "only the schema line may be at indent 0".into(),
            });
        }
        while stack.last().map(|&(d, _)| d >= line.indent).unwrap_or(false) {
            stack.pop();
        }
        let &(pdepth, parent) = stack.last().ok_or(ParseError {
            line: line.no,
            message: "indentation jumped past the schema root".into(),
        })?;
        if pdepth + 1 != line.indent {
            return Err(ParseError {
                line: line.no,
                message: format!("indent {} has no parent at {}", line.indent, line.indent - 1),
            });
        }
        match line.words[0] {
            "element" | "type" => {
                if line.words.len() < 2 {
                    return Err(ParseError { line: line.no, message: "missing name".into() });
                }
                let name = line.words[1];
                // `element NAME : TYPE …` declares an atomic (leaf)
                // element with a data type, mirroring `attr` but with
                // element kind — needed so every expressible schema
                // tree can round-trip through `write_sdl`.
                if line.words.get(2) == Some(&":") && line.words[0] == "element" {
                    if line.words.len() < 4 {
                        return Err(ParseError {
                            line: line.no,
                            message: "expected `element NAME : TYPE`".into(),
                        });
                    }
                    let id = b.atomic(
                        parent,
                        name,
                        ElementKind::XmlElement,
                        DataType::parse(line.words[3]),
                    );
                    for &w in &line.words[4..] {
                        match w {
                            "optional" => {
                                b.set_optional(id, true);
                            }
                            "key" => {
                                b.set_key(id, true);
                            }
                            other => {
                                return Err(ParseError {
                                    line: line.no,
                                    message: format!("unknown modifier `{other}`"),
                                })
                            }
                        }
                    }
                    // atomic: nothing may nest below it, so it never
                    // goes on the stack.
                    continue;
                }
                let id = if line.words[0] == "type" {
                    if line.indent != 1 {
                        return Err(ParseError {
                            line: line.no,
                            message: "type definitions live at top level".into(),
                        });
                    }
                    let t = b.type_def(name);
                    types.insert(name.to_string(), t);
                    t
                } else {
                    b.structured(parent, name, ElementKind::XmlElement)
                };
                let mut rest = line.words[2..].iter();
                while let Some(&w) = rest.next() {
                    match w {
                        "uses" => {
                            let ty = rest.next().ok_or(ParseError {
                                line: line.no,
                                message: "`uses` needs a type name".into(),
                            })?;
                            pending_uses.push((line.no, id, (*ty).to_string()));
                        }
                        "optional" => {
                            b.set_optional(id, true);
                        }
                        other => {
                            return Err(ParseError {
                                line: line.no,
                                message: format!("unknown modifier `{other}`"),
                            })
                        }
                    }
                }
                stack.push((line.indent, id));
            }
            "attr" => {
                // attr NAME : TYPE [optional] [key]
                let colon = line.words.iter().position(|&w| w == ":").ok_or(ParseError {
                    line: line.no,
                    message: "expected `attr NAME : TYPE`".into(),
                })?;
                if colon != 2 || line.words.len() < 4 {
                    return Err(ParseError {
                        line: line.no,
                        message: "expected `attr NAME : TYPE`".into(),
                    });
                }
                let id = b.atomic(
                    parent,
                    line.words[1],
                    ElementKind::XmlAttribute,
                    DataType::parse(line.words[3]),
                );
                for &w in &line.words[4..] {
                    match w {
                        "optional" => {
                            b.set_optional(id, true);
                        }
                        "key" => {
                            b.set_key(id, true);
                        }
                        other => {
                            return Err(ParseError {
                                line: line.no,
                                message: format!("unknown modifier `{other}`"),
                            })
                        }
                    }
                }
            }
            other => {
                return Err(ParseError {
                    line: line.no,
                    message: format!("unknown directive `{other}`"),
                })
            }
        }
    }
    for (no, id, ty) in pending_uses {
        let t = types
            .get(&ty)
            .ok_or(ParseError { line: no, message: format!("unknown type `{ty}`") })?;
        b.derive_from(id, *t);
    }
    b.build().map_err(|e| ParseError { line: 0, message: e.to_string() })
}

/// Error raised by [`write_sdl`] for schemas the SDL grammar cannot
/// express (relational key/constraint machinery, views, annotations,
/// names the line-oriented format cannot quote).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteError {
    /// Name of the offending element.
    pub element: String,
    /// Why it cannot be written.
    pub message: String,
}

impl fmt::Display for WriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot write `{}` as SDL: {}", self.element, self.message)
    }
}

impl std::error::Error for WriteError {}

/// Check a name survives the line-oriented grammar: it must stay one
/// whitespace token, not start a comment, and not collide with the
/// `attr NAME : TYPE` colon scan.
fn writable_name(name: &str) -> Result<(), WriteError> {
    let bad = name.is_empty() || name.chars().any(|c| c.is_whitespace() || c == '#' || c == ':');
    if bad {
        Err(WriteError {
            element: name.to_string(),
            message: "names must be non-empty and contain no whitespace, `#` or `:`".into(),
        })
    } else {
        Ok(())
    }
}

/// Render a schema as an SDL document (the inverse of [`parse_sdl`]).
///
/// Expressible schemas are XML-shaped: structured elements, atomic
/// elements/attributes with data types and `optional`/`key` flags,
/// shared type definitions with `uses` references. Element kinds
/// normalize to the kinds [`parse_sdl`] assigns (`XmlElement`,
/// `XmlAttribute`, `TypeDef`), so for schemas built from those kinds
/// `parse_sdl(&write_sdl(s)?)` reproduces `s` exactly — content hash
/// included. Relational constraint machinery (keys, foreign keys,
/// views), aggregation/reference edges, annotations, and
/// non-top-level type definitions have no SDL spelling and are
/// reported as [`WriteError`]s rather than dropped silently.
pub fn write_sdl(schema: &Schema) -> Result<String, WriteError> {
    writable_name(schema.name())?;
    let mut out = String::new();
    writeln!(out, "schema {}", schema.name()).expect("string write");
    for &child in schema.children(schema.root()) {
        write_element(schema, child, 1, &mut out)?;
    }
    // Anything not reachable through containment (free-standing
    // elements) has no place in the document.
    let mut reachable = vec![false; schema.len()];
    reachable[schema.root().index()] = true;
    for id in schema.descendants(schema.root()) {
        reachable[id.index()] = true;
    }
    if let Some((id, e)) = schema.iter().find(|(id, _)| !reachable[id.index()]) {
        return Err(WriteError {
            element: e.name.clone(),
            message: format!("element {id} is not reachable through containment"),
        });
    }
    Ok(out)
}

fn write_element(
    schema: &Schema,
    id: ElementId,
    depth: usize,
    out: &mut String,
) -> Result<(), WriteError> {
    let e = schema.element(id);
    writable_name(&e.name)?;
    let fail = |message: String| Err(WriteError { element: e.name.clone(), message });
    if e.annotation.is_some() {
        return fail("annotations have no SDL spelling".into());
    }
    if !schema.aggregates(id).is_empty() || !schema.references(id).is_empty() {
        return fail("aggregation/reference edges have no SDL spelling".into());
    }
    match e.kind {
        ElementKind::Key | ElementKind::ForeignKey | ElementKind::View => {
            return fail(format!("{} elements have no SDL spelling", e.kind));
        }
        ElementKind::TypeDef if depth != 1 => {
            return fail("type definitions live at top level".into());
        }
        _ => {}
    }
    let indent = "  ".repeat(depth);
    let is_typedef = e.kind == ElementKind::TypeDef;
    if e.not_instantiated && !is_typedef {
        return fail("not-instantiated elements have no SDL spelling".into());
    }
    // Atomic spelling (`… NAME : TYPE`) when the element carries a real
    // data type, or is a bare leaf with no `uses` to splice members in.
    let atomic = !is_typedef
        && (e.data_type != DataType::Complex
            || (schema.children(id).is_empty() && schema.derived_from(id).is_empty()));
    if atomic {
        if !schema.children(id).is_empty() {
            return fail("an element with a data type cannot contain children".into());
        }
        if !schema.derived_from(id).is_empty() {
            return fail("an atomic element cannot use a type".into());
        }
        let keyword = if e.kind == ElementKind::XmlAttribute
            || e.kind == ElementKind::Attribute
            || e.kind == ElementKind::Column
        {
            "attr"
        } else {
            "element"
        };
        write!(out, "{indent}{keyword} {} : {}", e.name, e.data_type).expect("string write");
        if e.optional {
            out.push_str(" optional");
        }
        if e.is_key {
            out.push_str(" key");
        }
        out.push('\n');
    } else {
        // Structured spelling, shared by `element` and `type` lines:
        // both accept `uses` (multi-level derivation, §8.1) and
        // `optional`.
        let keyword = if is_typedef { "type" } else { "element" };
        write!(out, "{indent}{keyword} {}", e.name).expect("string write");
        for &ty in schema.derived_from(id) {
            let t = schema.element(ty);
            if t.kind != ElementKind::TypeDef {
                return fail(format!("`uses` target `{}` is not a type definition", t.name));
            }
            writable_name(&t.name)?;
            write!(out, " uses {}", t.name).expect("string write");
        }
        if e.optional {
            out.push_str(" optional");
        }
        if e.is_key {
            return fail("only atomic elements can be keys in SDL".into());
        }
        out.push('\n');
    }
    for &child in schema.children(id) {
        write_element(schema, child, depth + 1, out)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cupid_model::{expand, ExpandOptions};

    const DOC: &str = "\
# the running example
schema PurchaseOrder
  type Address
    attr Street : string
    attr City : string
  element DeliverTo uses Address
  element InvoiceTo uses Address
  element Items
    attr ItemCount : int
    element Item
      attr ItemNumber : int key
      attr Quantity : decimal optional
";

    #[test]
    fn parses_the_running_example() {
        let s = parse_sdl(DOC).unwrap();
        assert_eq!(s.name(), "PurchaseOrder");
        let t = expand(&s, &ExpandOptions::none()).unwrap();
        assert!(t.find_path("PurchaseOrder.DeliverTo.Street").is_some());
        assert!(t.find_path("PurchaseOrder.InvoiceTo.City").is_some());
        assert!(t.find_path("PurchaseOrder.Items.Item.Quantity").is_some());
        let qty = s.find("Quantity").unwrap();
        assert!(s.element(qty).optional);
        assert_eq!(s.element(qty).data_type, DataType::Decimal);
        let num = s.find("ItemNumber").unwrap();
        assert!(s.element(num).is_key);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_sdl("schema S\n  frobnicate X\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse_sdl("element X\n").unwrap_err();
        assert_eq!(err.line, 1);
        let err = parse_sdl("schema S\n   attr A : int\n").unwrap_err();
        assert_eq!(err.line, 2); // 3 spaces
        let err = parse_sdl("schema S\n    attr A : int\n").unwrap_err();
        assert_eq!(err.line, 2); // indent jump
    }

    #[test]
    fn unknown_type_reference_fails() {
        let err = parse_sdl("schema S\n  element E uses Nope\n").unwrap_err();
        assert!(err.message.contains("Nope"));
    }

    #[test]
    fn empty_document_fails() {
        assert!(parse_sdl("").is_err());
        assert!(parse_sdl("# only a comment\n").is_err());
    }

    #[test]
    fn write_then_parse_is_identity_on_the_running_example() {
        let s = parse_sdl(DOC).unwrap();
        let text = write_sdl(&s).unwrap();
        let back = parse_sdl(&text).unwrap();
        assert_eq!(back.content_hash(), s.content_hash(), "document:\n{text}");
        // and writing again is a fixed point
        assert_eq!(write_sdl(&back).unwrap(), text);
    }

    #[test]
    fn atomic_element_grammar_extension_round_trips() {
        let doc = "\
schema PO
  element Items
    element Line : int key
    element Note : string optional
    attr Count : int
";
        let s = parse_sdl(doc).unwrap();
        let line = s.find("Line").unwrap();
        assert_eq!(s.element(line).kind, ElementKind::XmlElement);
        assert_eq!(s.element(line).data_type, DataType::Int);
        assert!(s.element(line).is_key);
        let note = s.find("Note").unwrap();
        assert!(s.element(note).optional);
        let text = write_sdl(&s).unwrap();
        assert_eq!(parse_sdl(&text).unwrap().content_hash(), s.content_hash());
        // nothing may nest below an atomic element
        let bad = "schema S\n  element A : int\n    attr B : int\n";
        assert!(parse_sdl(bad).is_err());
    }

    #[test]
    fn typedef_uses_round_trips() {
        // Multi-level derivation (§8.1): USAddress uses Address.
        let doc = "\
schema S
  type Address
    attr Street : string
  type USAddress uses Address
    attr ZipCode : string
  element ShipTo uses USAddress
";
        let s = parse_sdl(doc).unwrap();
        let text = write_sdl(&s).unwrap();
        assert_eq!(parse_sdl(&text).unwrap().content_hash(), s.content_hash(), "{text}");
    }

    #[test]
    fn unwritable_constructs_are_loud() {
        use cupid_model::SchemaBuilder;
        // relational key machinery
        let mut b = SchemaBuilder::new("DB");
        let t = b.table("Orders");
        let c = b.column(t, "OrderID", DataType::Int);
        b.primary_key(t, &[c]);
        let err = write_sdl(&b.build().unwrap()).unwrap_err();
        assert!(err.message.contains("SDL"), "{err}");
        // unwritable name
        let mut b = SchemaBuilder::new("S");
        b.atomic(b.root(), "two words", ElementKind::XmlAttribute, DataType::Int);
        assert!(write_sdl(&b.build().unwrap()).is_err());
        // annotation
        let mut b = SchemaBuilder::new("S");
        let a = b.atomic(b.root(), "X", ElementKind::XmlAttribute, DataType::Int);
        b.annotate(a, "note");
        assert!(write_sdl(&b.build().unwrap()).is_err());
        // writable relational *columns* still export as attrs
        let mut b = SchemaBuilder::new("DB");
        let t = b.table("Orders");
        b.column(t, "OrderID", DataType::Int);
        let text = write_sdl(&b.build().unwrap()).unwrap();
        assert!(text.contains("attr OrderID : int"), "{text}");
    }

    #[test]
    fn round_trips_through_cupid() {
        // A parsed schema is a first-class citizen of the matcher.
        let s1 = parse_sdl(DOC).unwrap();
        let s2 = parse_sdl(DOC.replace("PurchaseOrder", "PO").as_str()).unwrap();
        let cupid = cupid_core::Cupid::new(cupid_lexical::Thesaurus::with_default_stopwords());
        let out = cupid.match_schemas(&s1, &s2).unwrap();
        assert!(out.has_leaf_mapping("PurchaseOrder.Items.Item.Quantity", "PO.Items.Item.Quantity"));
    }
}
