//! # cupid-io — schema import for the Cupid matcher
//!
//! The paper's prototype *"currently operates on XML and relational
//! schemas"* (§9). This crate provides three hand-written importers that
//! produce [`cupid_model::Schema`] graphs:
//!
//! * [`sdl`] — a compact indentation-based schema description language
//!   (the native on-disk format of this reproduction);
//! * [`ddl`] — a SQL `CREATE TABLE` subset with primary/foreign keys
//!   (enough to express the Figure-8 schemas);
//! * [`xml`] — schema inference from XML document instances (elements,
//!   attributes, inferred atomic types).
//!
//! All three are pure-Rust recursive-descent parsers; no external parser
//! crates are used.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ddl;
pub mod sdl;
pub mod xml;

pub use ddl::parse_ddl;
pub use sdl::{parse_sdl, write_sdl};
pub use xml::schema_from_xml;

/// Parse errors shared by the importers.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number (0 when unknown).
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}
